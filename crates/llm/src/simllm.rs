//! The simulated pre-trained LLM.
//!
//! `SimLlm` implements [`LanguageModel`] over a [`KnowledgeStore`] plus a
//! [`ModelProfile`]. Everything it does flows through *text*: the prompt is
//! truncated to the model's context window, its final question line is
//! intent-matched, and the answer is rendered with the profile's noise
//! channels.
//!
//! Two design rules keep the simulation behaviourally faithful:
//!
//! 1. **Stable beliefs.** Whether the model recalls an entity, knows a
//!    fact, or holds a *wrong* value for it is a deterministic function of
//!    `(model seed, entity, attribute)` — not of the prompt. A model that
//!    believes Rome has 2.6M people says so in every prompt, exactly like
//!    a real LLM's parameters. Iterating a list prompt therefore cannot
//!    surface rows the model "doesn't know" (paper §3: coverage bias),
//!    and filter errors are consistent across operators.
//! 2. **Conventions, not coin flips, for surface forms.** Which surface
//!    form an entity reference takes ("Italy" / "IT" / "ITA") is chosen
//!    per *(subject type, attribute label)* context. Two plan operators
//!    that retrieve the "same" value through different contexts can
//!    therefore disagree systematically — reproducing the paper's join
//!    failures ("an attempt to join the country code 'IT' with 'ITA'",
//!    §5) rather than sprinkling random noise.

use crate::intent::{self, CmpOp, Condition, PromptValue, TaskIntent};
use crate::knowledge::{Entity, FactValue, KnowledgeStore};
use crate::model::{Completion, LanguageModel, Usage};
use crate::noise::{self, seeded};
use crate::profiles::ModelProfile;
use crate::qa;
use crate::tokenizer::{count_tokens, truncate_tokens};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The simulated LLM: a knowledge store viewed through a noisy profile.
#[derive(Clone)]
pub struct SimLlm {
    kb: Arc<KnowledgeStore>,
    profile: ModelProfile,
}

impl SimLlm {
    /// Creates a model over a knowledge store.
    pub fn new(kb: Arc<KnowledgeStore>, profile: ModelProfile) -> Self {
        SimLlm { kb, profile }
    }

    /// The profile in use.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The underlying knowledge store.
    pub fn knowledge(&self) -> &KnowledgeStore {
        &self.kb
    }

    /// Uniform [0,1) draw, stable per (model seed, parts).
    fn draw(&self, parts: &[&str]) -> f64 {
        (seeded(self.profile.seed, parts) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// RNG seeded stably per (model seed, parts).
    fn rng(&self, parts: &[&str]) -> StdRng {
        StdRng::seed_from_u64(seeded(self.profile.seed, parts))
    }

    /// Does the model recall this entity at all? Stable belief.
    pub fn recalls(&self, e: &Entity) -> bool {
        self.draw(&["recall", &e.entity_type, &e.name])
            < self.profile.recall_probability(e.popularity)
    }

    /// The value the model *believes* for `(entity, attribute)`:
    /// `None` = the model would answer "Unknown".
    pub fn perceived_fact(&self, e: &Entity, attribute: &str) -> Option<FactValue> {
        let ty = e.entity_type.clone();
        // An entity's "name" is its identity, not a stored fact: asked for
        // the name of something it recalls, the model simply says the name.
        if self.kb.fact(e.id, attribute).is_none()
            && self.kb.canonical_predicate(attribute) == "name"
        {
            return Some(FactValue::Text(e.name.clone()));
        }
        let truth = self.kb.fact(e.id, attribute)?;
        if self.draw(&["know", &ty, &e.name, attribute]) < self.profile.unknown_rate {
            return None;
        }
        if self.draw(&["err", &ty, &e.name, attribute]) < self.profile.value_error_rate {
            Some(self.perturbed(truth, e, attribute))
        } else {
            Some(truth.clone())
        }
    }

    fn perturbed(&self, truth: &FactValue, e: &Entity, attribute: &str) -> FactValue {
        let mut rng = self.rng(&["perturb", &e.entity_type, &e.name, attribute]);
        match truth {
            FactValue::Number(n) => {
                // Ensure the wrong value is wrong enough to usually exceed
                // the evaluation's 5% relative-error tolerance.
                let rel = self.profile.value_rel_err.max(0.07);
                let mut v = noise::perturb_number(*n, rel, &mut rng);
                if (v - n).abs() / n.abs().max(1.0) < 0.05 {
                    v = n * (1.0 + rel) + 1.0;
                    if n.fract() == 0.0 {
                        v = v.round();
                    }
                }
                FactValue::Number(v)
            }
            FactValue::Date { year, month, day } => {
                let (y, m, d) = noise::perturb_date(*year, *month, *day, 500, &mut rng);
                FactValue::Date {
                    year: y,
                    month: m,
                    day: d,
                }
            }
            FactValue::Text(_) | FactValue::Entity(_) => {
                // Confusion: substitute the same attribute of another
                // entity of the same type (a popular wrong answer).
                let peers = self.kb.entities_of_type(&e.entity_type);
                let donors: Vec<&&Entity> = peers
                    .iter()
                    .filter(|p| p.id != e.id && self.kb.fact(p.id, attribute).is_some())
                    .collect();
                if donors.is_empty() {
                    truth.clone()
                } else {
                    let donor = donors[rng.gen_range(0..donors.len())];
                    self.kb
                        .fact(donor.id, attribute)
                        .cloned()
                        .unwrap_or_else(|| truth.clone())
                }
            }
        }
    }

    /// Chooses the surface form for an entity reference in the given
    /// context.
    ///
    /// * Enumerating a relation's own keys ("list the names of mayors")
    ///   yields canonical forms — that is where formal names live.
    /// * A *reference* from another subject ("who is the mayor of Rome?")
    ///   uses informal alias forms at `alias_rate`, stable per (context,
    ///   attribute, entity).
    /// * Code-like labels always render as a code; the convention (which
    ///   code standard) is stable per `(subject type, label)`, with the
    ///   *last* alias slot being the ground-truth-canonical form and
    ///   `code_drift` the probability a context settles on a different
    ///   standard — the paper's "IT" vs "ITA" join failure.
    pub fn entity_surface(&self, target: &Entity, context_type: &str, attribute: &str) -> String {
        if target.aliases.is_empty() {
            return target.name.clone();
        }
        let label = attribute.to_ascii_lowercase();
        let slots = target.aliases.len();
        if label.contains("code") {
            if self.draw(&["convdrift", context_type, &label]) < self.profile.code_drift {
                let conv =
                    seeded(self.profile.seed, &["conv", context_type, &label]) as usize % slots;
                return target.aliases[conv].clone();
            }
            return target.aliases[slots - 1].clone();
        }
        if context_type.eq_ignore_ascii_case(&target.entity_type) {
            return target.name.clone();
        }
        // Famous targets surface under their canonical names ("the capital
        // of Valdovia is Sanbrook"); obscure ones drift into informal or
        // abbreviated forms. This keeps references to celebrity entities
        // joinable while niche-entity joins break — matching the paper's
        // popularity observations (§6 "Coverage and Bias").
        // Quadratic in popularity: only genuinely famous entities get the
        // canonical-form guarantee; the mid/tail drifts.
        let effective =
            self.profile.alias_rate * (1.0 - 0.9 * target.popularity * target.popularity);
        if self.draw(&["conv", context_type, &label, &target.name]) < effective {
            let slot =
                seeded(self.profile.seed, &["convslot", context_type, &label]) as usize % slots;
            target.aliases[slot].clone()
        } else {
            target.name.clone()
        }
    }

    /// Evaluates a condition against the model's *beliefs* about `e`.
    /// `None` means the model cannot tell (missing value).
    pub fn condition_holds(&self, e: &Entity, cond: &Condition) -> Option<bool> {
        let perceived = self.perceived_fact(e, &cond.attribute);
        match cond.op {
            CmpOp::IsNull => return Some(perceived.is_none()),
            CmpOp::IsNotNull => return Some(perceived.is_some()),
            _ => {}
        }
        let v = perceived?;
        // Operand access is by `.get` — a condition missing an operand
        // (corrupted or hand-built, never produced by `Condition::parse`)
        // evaluates to "cannot tell" instead of panicking a worker.
        let result = match cond.op {
            CmpOp::Eq => self.value_matches(&v, cond.values.first()?),
            CmpOp::NotEq => !self.value_matches(&v, cond.values.first()?),
            CmpOp::Gt | CmpOp::GtEq | CmpOp::Lt | CmpOp::LtEq => {
                let a = fact_number(&v)?;
                let b = cond.values.first()?.as_number()?;
                match cond.op {
                    CmpOp::Gt => a > b,
                    CmpOp::GtEq => a >= b,
                    CmpOp::Lt => a < b,
                    CmpOp::LtEq => a <= b,
                    _ => unreachable!(),
                }
            }
            CmpOp::Between => {
                let a = fact_number(&v)?;
                let lo = cond.values.first()?.as_number()?;
                let hi = cond.values.get(1)?.as_number()?;
                a >= lo && a <= hi
            }
            CmpOp::In => cond.values.iter().any(|pv| self.value_matches(&v, pv)),
            CmpOp::Like => {
                let s = self.fact_text(&v);
                let pat = cond.values.first()?.as_text()?;
                sloppy_like(&s, pat)
            }
            CmpOp::IsNull | CmpOp::IsNotNull => unreachable!(),
        };
        Some(result)
    }

    /// Compares a believed fact with a prompt operand the way a language
    /// model would: case-insensitive text, any alias form accepted.
    fn value_matches(&self, v: &FactValue, pv: &PromptValue) -> bool {
        match (v, pv) {
            (FactValue::Number(a), PromptValue::Number(b)) => (a - b).abs() < 1e-9,
            (FactValue::Entity(id), PromptValue::Text(t)) => {
                let e = self.kb.entity(*id);
                let t = t.trim();
                e.name.eq_ignore_ascii_case(t)
                    || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(t))
            }
            (FactValue::Text(a), PromptValue::Text(b)) => a.trim().eq_ignore_ascii_case(b.trim()),
            (FactValue::Number(a), PromptValue::Text(b)) => {
                b.trim().parse::<f64>().is_ok_and(|n| (a - n).abs() < 1e-9)
            }
            (FactValue::Date { year, month, day }, PromptValue::Text(b)) => {
                noise::render_date(*year, *month, *day, noise::DateStyle::Iso) == b.trim()
            }
            _ => false,
        }
    }

    /// The plain text the model associates with a fact (canonical form).
    pub fn fact_text(&self, v: &FactValue) -> String {
        match v {
            FactValue::Text(s) => s.clone(),
            FactValue::Number(n) => noise::render_number(*n, noise::NumberStyle::Plain),
            FactValue::Date { year, month, day } => {
                noise::render_date(*year, *month, *day, noise::DateStyle::Iso)
            }
            FactValue::Entity(id) => self.kb.entity(*id).name.clone(),
        }
    }

    /// Renders a believed fact as answer text, applying format noise and
    /// surface-form conventions.
    pub fn render_value(
        &self,
        v: &FactValue,
        context_type: &str,
        attribute: &str,
        rng: &mut StdRng,
    ) -> String {
        match v {
            FactValue::Entity(id) => {
                let target = self.kb.entity(*id);
                self.entity_surface(target, context_type, attribute)
            }
            other => noise::render_fact(other, rng, self.profile.format_noise, |_| None),
        }
    }

    // -----------------------------------------------------------------
    // Task answering
    // -----------------------------------------------------------------

    fn answer(&self, prompt: &str) -> String {
        if let Some(task) = intent::parse_task(prompt) {
            return self.answer_task(&task, prompt);
        }
        let q_line = intent::question_line(prompt);
        if let Some(q) = crate::nlq::parse_question(q_line) {
            let cot = prompt.contains("step by step");
            return qa::answer_question(self, &q, cot, prompt);
        }
        "Unknown".to_string()
    }

    fn answer_task(&self, task: &TaskIntent, prompt: &str) -> String {
        match task {
            TaskIntent::ListKeys {
                relation,
                key_attr,
                condition,
                exclude,
            } => self.answer_list_keys(
                relation,
                key_attr,
                condition.as_ref(),
                exclude.as_slice(),
                prompt,
            ),
            TaskIntent::ListKeysPage {
                relation,
                key_attr,
                condition,
                offset,
            } => {
                self.answer_list_keys_page(relation, key_attr, condition.as_ref(), *offset, prompt)
            }
            TaskIntent::FetchAttr {
                relation,
                key_attr: _,
                key,
                attribute,
            } => self.answer_fetch_attr(relation, key, attribute, prompt),
            TaskIntent::CheckFilter {
                relation,
                key_attr: _,
                key,
                condition,
            } => self.answer_check_filter(relation, key, condition, prompt),
            TaskIntent::FetchAttrBatch {
                relation,
                key_attr,
                keys,
                attribute,
            } => self.answer_batched(
                prompt,
                keys,
                |key| TaskIntent::FetchAttr {
                    relation: relation.clone(),
                    key_attr: key_attr.clone(),
                    key: key.to_string(),
                    attribute: attribute.clone(),
                },
                |single_prompt, key| {
                    self.answer_fetch_attr(relation, key, attribute, single_prompt)
                },
            ),
            TaskIntent::FilterKeysBatch {
                relation,
                key_attr,
                keys,
                condition,
            } => self.answer_batched(
                prompt,
                keys,
                |key| TaskIntent::CheckFilter {
                    relation: relation.clone(),
                    key_attr: key_attr.clone(),
                    key: key.to_string(),
                    condition: condition.clone(),
                },
                |single_prompt, key| {
                    self.answer_check_filter(relation, key, condition, single_prompt)
                },
            ),
            TaskIntent::FetchGridBatch {
                relation,
                key_attr,
                keys,
                attributes,
            } => self.answer_grid(prompt, relation, key_attr, keys, attributes),
        }
    }

    /// Answers a grid-fused fetch as one `key ⌁ attr: answer` line per
    /// (key, attribute) cell.
    ///
    /// Like [`Self::answer_batched`], every cell is answered through the
    /// *single-key, single-attribute* machinery seeded with the
    /// reconstructed one-cell prompt, so grid answers are bit-identical to
    /// what per-cell retrieval would have produced under the same prompt
    /// builder — the guarantee that lets the engine prove grid mode's
    /// `R_M`-invariance on a noise-free model.
    fn answer_grid(
        &self,
        prompt: &str,
        relation: &str,
        key_attr: &str,
        keys: &[String],
        attributes: &[String],
    ) -> String {
        if keys.is_empty() || attributes.is_empty() {
            return "Unknown".to_string();
        }
        let preamble = intent::question_start(prompt).map_or("", |i| &prompt[..i]);
        let cells: Vec<(String, String, String)> = keys
            .iter()
            .flat_map(|key| {
                attributes.iter().map(move |attribute| {
                    let single_prompt = format!(
                        "{preamble}Q: {}\nA:",
                        intent::render_task(&TaskIntent::FetchAttr {
                            relation: relation.to_string(),
                            key_attr: key_attr.to_string(),
                            key: key.clone(),
                            attribute: attribute.clone(),
                        })
                    );
                    (
                        key.clone(),
                        attribute.clone(),
                        self.answer_fetch_attr(relation, key, attribute, &single_prompt),
                    )
                })
            })
            .collect();
        intent::render_grid_answer(
            cells
                .iter()
                .map(|(k, a, v)| (k.as_str(), a.as_str(), v.as_str())),
        )
    }

    /// Answers a multi-key batched task as one `key: answer` line per key.
    ///
    /// Each key is answered through the *single-key* machinery, seeded with
    /// the reconstructed single-key prompt (the batched prompt's preamble
    /// plus the single task's question) — so per-key beliefs, surface forms
    /// and format noise are bit-identical to what one-prompt-per-key
    /// retrieval would have produced under the same prompt builder. A real
    /// LLM offers no such guarantee; keeping it exact here is what lets the
    /// engine prove `R_M`-invariance of batching on a noise-free model.
    fn answer_batched<M, A>(
        &self,
        prompt: &str,
        keys: &[String],
        make_single: M,
        answer_one: A,
    ) -> String
    where
        M: Fn(&str) -> TaskIntent,
        A: Fn(&str, &str) -> String,
    {
        if keys.is_empty() {
            return "Unknown".to_string();
        }
        // Everything before the final question's `Q: ` lead-in — prepended
        // to each reconstructed prompt so the per-key noise seeds match the
        // single-key path exactly.
        let preamble = intent::question_start(prompt).map_or("", |i| &prompt[..i]);
        let pairs: Vec<(String, String)> = keys
            .iter()
            .map(|key| {
                let single_prompt = format!(
                    "{preamble}Q: {}\nA:",
                    intent::render_task(&make_single(key))
                );
                (key.clone(), answer_one(&single_prompt, key))
            })
            .collect();
        intent::render_batched_answer(pairs.iter().map(|(k, a)| (k.as_str(), a.as_str())))
    }

    /// The entity type a prompt-level relation name denotes.
    pub fn relation_type(&self, relation: &str) -> String {
        self.kb.canonical_predicate(relation)
    }

    /// The model's stable belief surface list for one relation scan —
    /// recalled entities (condition-screened when the scan carries one,
    /// with the stable combined-condition flip), each rendered in the
    /// model's surface form, plus any hallucinated neighbours. Both list
    /// protocols (exclusion iteration and offset paging) read the same
    /// list, so a page at offset `n` serves exactly the keys an exclusion
    /// prompt carrying the first `n` surfaces would have produced next.
    fn list_surfaces(
        &self,
        relation: &str,
        key_attr: &str,
        condition: Option<&Condition>,
    ) -> Option<Vec<String>> {
        let ty = self.relation_type(relation);
        let all = self.kb.entities_of_type(&ty);
        if all.is_empty() {
            return None;
        }
        let mut surfaces: Vec<String> = Vec::new();
        for e in &all {
            if !self.recalls(e) {
                continue;
            }
            if let Some(cond) = condition {
                let holds = self.condition_holds(e, cond).unwrap_or(false);
                // Combined prompts are harder: independent chance the model
                // mis-applies the condition to this entity (stable).
                let flipped = self.draw(&["combflip", &ty, &e.name, &cond.attribute])
                    < self.profile.combined_condition_penalty;
                if holds == flipped {
                    continue;
                }
            }
            surfaces.push(self.entity_surface(e, &ty, key_attr));
            // Hallucination: occasionally invent a neighbour.
            if self.draw(&["fake", &ty, &e.name]) < self.profile.hallucination_rate {
                let mut frng = self.rng(&["fakename", &ty, &e.name]);
                surfaces.push(noise::fake_name(&mut frng));
            }
        }
        Some(surfaces)
    }

    /// Renders one page of list values ("No more results" when empty).
    fn render_list_page(&self, fresh: Vec<String>, prompt: &str) -> String {
        let mut rng = self.rng(&["list", prompt]);
        if fresh.is_empty() {
            return "No more results".to_string();
        }
        if self.profile.verbose && rng.gen::<f64>() < 0.5 {
            format!("Sure! Here are some values: {}.", fresh.join(", "))
        } else {
            fresh.join(", ")
        }
    }

    fn answer_list_keys(
        &self,
        relation: &str,
        key_attr: &str,
        condition: Option<&Condition>,
        exclude: &[String],
        prompt: &str,
    ) -> String {
        let Some(surfaces) = self.list_surfaces(relation, key_attr, condition) else {
            return "Unknown".to_string();
        };
        let excluded: std::collections::HashSet<String> = exclude
            .iter()
            .map(|s| s.trim().to_ascii_lowercase())
            .collect();
        let fresh: Vec<String> = surfaces
            .into_iter()
            .filter(|s| !excluded.contains(&s.trim().to_ascii_lowercase()))
            .take(self.profile.list_page_size)
            .collect();
        self.render_list_page(fresh, prompt)
    }

    /// Offset paging over the same stable surface list the exclusion
    /// protocol walks: "starting after the first `offset` results" skips
    /// `offset` surfaces and returns the next page.
    fn answer_list_keys_page(
        &self,
        relation: &str,
        key_attr: &str,
        condition: Option<&Condition>,
        offset: usize,
        prompt: &str,
    ) -> String {
        let Some(surfaces) = self.list_surfaces(relation, key_attr, condition) else {
            return "Unknown".to_string();
        };
        let fresh: Vec<String> = surfaces
            .into_iter()
            .skip(offset)
            .take(self.profile.list_page_size)
            .collect();
        self.render_list_page(fresh, prompt)
    }

    fn answer_fetch_attr(
        &self,
        relation: &str,
        key: &str,
        attribute: &str,
        prompt: &str,
    ) -> String {
        let ty = self.relation_type(relation);
        let mut rng = self.rng(&["fetch", prompt]);
        let value = match self.kb.resolve(&ty, key) {
            Some(id) => {
                let e = self.kb.entity(id);
                match self.perceived_fact(e, attribute) {
                    Some(v) => Some(self.render_value(&v, &ty, attribute, &mut rng)),
                    None => self.fabricated_value(&ty, key, attribute),
                }
            }
            // The key itself may be a hallucination from an earlier list
            // prompt; the model happily fabricates attributes for it.
            None => self.fabricated_value(&ty, key, attribute),
        };
        match value {
            Some(v) if self.profile.verbose && rng.gen::<f64>() < 0.4 => {
                format!("The {attribute} of {key} is {v}.")
            }
            Some(v) => v,
            None => "Unknown".to_string(),
        }
    }

    /// Fabricates a plausible value for an unknown `(key, attribute)` by
    /// perturbing a donor entity's value, or admits "Unknown".
    fn fabricated_value(&self, ty: &str, key: &str, attribute: &str) -> Option<String> {
        if self.draw(&["fab", ty, key, attribute]) >= self.profile.fabrication_rate {
            return None;
        }
        let donor = self
            .kb
            .entities_of_type(ty)
            .into_iter()
            .find(|e| self.kb.fact(e.id, attribute).is_some())?;
        let truth = self.kb.fact(donor.id, attribute)?.clone();
        let fabricated = self.perturbed(&truth, donor, attribute);
        let mut rng = self.rng(&["fabrender", ty, key, attribute]);
        Some(self.render_value(&fabricated, ty, attribute, &mut rng))
    }

    fn answer_check_filter(
        &self,
        relation: &str,
        key: &str,
        condition: &Condition,
        _prompt: &str,
    ) -> String {
        let ty = self.relation_type(relation);
        let verdict = match self.kb.resolve(&ty, key) {
            Some(id) => {
                let e = self.kb.entity(id);
                let holds = self.condition_holds(e, condition).unwrap_or(false);
                let flipped = self.draw(&["flip", &ty, &e.name, &condition.attribute])
                    < self.profile.filter_flip_rate;
                holds != flipped
            }
            // Unknown key: guess, stable per key.
            None => self.draw(&["guess", &ty, key]) < 0.5,
        };
        if verdict {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    }
}

/// Numeric view of a fact (dates expose their year — models routinely
/// answer "what year" questions from dates).
pub fn fact_number(v: &FactValue) -> Option<f64> {
    match v {
        FactValue::Number(n) => Some(*n),
        FactValue::Date { year, .. } => Some(f64::from(*year)),
        _ => None,
    }
}

/// Case-insensitive `%`/`_` pattern match — deliberately sloppier than SQL
/// LIKE, because the model is matching words, not bytes.
pub fn sloppy_like(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_s) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn context_window(&self) -> usize {
        self.profile.context_window
    }

    /// Every answer this simulator produces is a deterministic function of
    /// the prompt and the full [`ModelProfile`], so the store-keying
    /// fingerprint is the profile itself: any field change (noise rates,
    /// seed, page size, …) yields a different signature and invalidates
    /// stored key universes.
    fn signature(&self) -> String {
        format!("{:?}", self.profile)
    }

    fn complete(&self, prompt: &str) -> Completion {
        let truncated = truncate_tokens(prompt, self.profile.context_window);
        let text = self.answer(truncated);
        let usage = Usage {
            prompt_tokens: count_tokens(truncated),
            completion_tokens: count_tokens(&text),
        };
        let latency_ms = self.profile.latency_ms
            + self.profile.latency_per_token_ms * usage.completion_tokens as u64;
        Completion {
            text,
            usage,
            latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::render_task;

    fn test_kb() -> Arc<KnowledgeStore> {
        let mut kb = KnowledgeStore::new();
        let italy = kb.add_entity("Italy", "country", 0.95);
        kb.add_alias(italy, "IT");
        kb.add_alias(italy, "ITA");
        let france = kb.add_entity("France", "country", 0.9);
        kb.add_alias(france, "FR");
        kb.add_alias(france, "FRA");
        for (name, pop, n, c) in [
            ("Rome", 0.95, 2_800_000.0, italy),
            ("Milan", 0.7, 1_400_000.0, italy),
            ("Paris", 0.93, 2_100_000.0, france),
            ("Lyon", 0.35, 500_000.0, france),
        ] {
            let e = kb.add_entity(name, "city", pop);
            kb.add_fact(e, "population", FactValue::Number(n));
            kb.add_fact(e, "country", FactValue::Entity(c));
            kb.add_fact(e, "countryCode", FactValue::Entity(c));
        }
        Arc::new(kb)
    }

    fn oracle() -> SimLlm {
        SimLlm::new(test_kb(), ModelProfile::oracle())
    }

    #[test]
    fn oracle_lists_all_keys() {
        let m = oracle();
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec![]),
        };
        let ans = m.complete(&render_task(&t)).text;
        for name in ["Rome", "Milan", "Paris", "Lyon"] {
            assert!(ans.contains(name), "{ans}");
        }
    }

    #[test]
    fn oracle_respects_exclusions_and_terminates() {
        let m = oracle();
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec![
                "Rome".into(),
                "Milan".into(),
                "Paris".into(),
                "Lyon".into(),
            ]),
        };
        assert_eq!(m.complete(&render_task(&t)).text, "No more results");
    }

    #[test]
    fn oracle_fetches_exact_values() {
        let m = oracle();
        let t = TaskIntent::FetchAttr {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Rome".into(),
            attribute: "population".into(),
        };
        assert_eq!(m.complete(&render_task(&t)).text, "2800000");
    }

    #[test]
    fn oracle_filter_checks() {
        let m = oracle();
        let t = TaskIntent::CheckFilter {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Rome".into(),
            condition: Condition {
                attribute: "population".into(),
                op: CmpOp::Gt,
                values: vec![PromptValue::Number(1_000_000.0)],
            },
        };
        assert_eq!(m.complete(&render_task(&t)).text, "Yes");
        let t2 = TaskIntent::CheckFilter {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Lyon".into(),
            condition: Condition {
                attribute: "population".into(),
                op: CmpOp::Gt,
                values: vec![PromptValue::Number(1_000_000.0)],
            },
        };
        assert_eq!(m.complete(&render_task(&t2)).text, "No");
    }

    #[test]
    fn oracle_pushdown_condition() {
        let m = oracle();
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: Some(Condition {
                attribute: "population".into(),
                op: CmpOp::Gt,
                values: vec![PromptValue::Number(1_000_000.0)],
            }),
            exclude: std::sync::Arc::new(vec![]),
        };
        let ans = m.complete(&render_task(&t)).text;
        assert!(ans.contains("Rome") && ans.contains("Paris") && ans.contains("Milan"));
        assert!(!ans.contains("Lyon"));
    }

    #[test]
    fn beliefs_are_stable_across_prompts() {
        let m = SimLlm::new(test_kb(), ModelProfile::chatgpt());
        let t = TaskIntent::FetchAttr {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Lyon".into(),
            attribute: "population".into(),
        };
        // Different prompt wrappers, same belief: fetch twice via different
        // few-shot prefixes.
        let p1 = format!("preamble A\nQ: {}\nA:", render_task(&t));
        let p2 = format!("something entirely different\nQ: {}\nA:", render_task(&t));
        let kb = test_kb();
        let lyon = kb.resolve("city", "Lyon").unwrap();
        let e = kb.entity(lyon);
        let belief = m.perceived_fact(e, "population");
        // The rendered answers may differ in *format*, but the underlying
        // belief must be identical.
        let _ = (m.complete(&p1), m.complete(&p2));
        assert_eq!(belief, m.perceived_fact(e, "population"));
    }

    #[test]
    fn code_attributes_use_code_aliases() {
        let m = SimLlm::new(test_kb(), ModelProfile::chatgpt());
        let kb = m.knowledge();
        let italy = kb.entity(kb.resolve("country", "Italy").unwrap());
        let surface = m.entity_surface(italy, "city", "countryCode");
        assert!(
            surface == "IT" || surface == "ITA",
            "code label must render as a code, got {surface}"
        );
    }

    /// Wraps a task question the way `PromptBuilder::task` does, so the
    /// batched/single bit-identity below is checked under a realistic
    /// preamble (the reconstruction in `answer_batched` depends on it).
    fn with_preamble(question: &str) -> String {
        format!("I am a highly intelligent question answering bot.\nQ: {question}\nA:")
    }

    #[test]
    fn batched_fetch_answers_are_bit_identical_to_single_key_path() {
        // chatgpt, not oracle: format noise and verbosity are prompt-seeded,
        // so this proves the reconstruction, not just stable beliefs.
        let m = SimLlm::new(test_kb(), ModelProfile::chatgpt());
        let keys: Vec<String> = vec!["Rome".into(), "Milan".into(), "Lyon".into()];
        let batched = m
            .complete(&with_preamble(&render_task(&TaskIntent::FetchAttrBatch {
                relation: "city".into(),
                key_attr: "name".into(),
                keys: keys.clone(),
                attribute: "population".into(),
            })))
            .text;
        let split = crate::intent::split_batched_answer(&batched, &keys);
        for (key, sub) in keys.iter().zip(split) {
            let single = m
                .complete(&with_preamble(&render_task(&TaskIntent::FetchAttr {
                    relation: "city".into(),
                    key_attr: "name".into(),
                    key: key.clone(),
                    attribute: "population".into(),
                })))
                .text;
            assert_eq!(sub.as_deref(), Some(single.as_str()), "key {key}");
        }
    }

    #[test]
    fn grid_fetch_answers_are_bit_identical_to_single_cell_path() {
        // chatgpt, not oracle: format noise and verbosity are prompt-seeded,
        // so this proves the per-cell prompt reconstruction.
        let m = SimLlm::new(test_kb(), ModelProfile::chatgpt());
        let keys: Vec<String> = vec!["Rome".into(), "Milan".into(), "Lyon".into()];
        let attrs: Vec<String> = vec!["population".into(), "country".into()];
        let grid = m
            .complete(&with_preamble(&render_task(&TaskIntent::FetchGridBatch {
                relation: "city".into(),
                key_attr: "name".into(),
                keys: keys.clone(),
                attributes: attrs.clone(),
            })))
            .text;
        let split = crate::intent::split_grid_answer(&grid, &keys, &attrs);
        for (key, row) in keys.iter().zip(split) {
            for (attr, cell) in attrs.iter().zip(row) {
                let single = m
                    .complete(&with_preamble(&render_task(&TaskIntent::FetchAttr {
                        relation: "city".into(),
                        key_attr: "name".into(),
                        key: key.clone(),
                        attribute: attr.clone(),
                    })))
                    .text;
                assert_eq!(
                    cell.as_deref(),
                    Some(single.as_str()),
                    "cell {key} × {attr}"
                );
            }
        }
    }

    #[test]
    fn grid_answer_latency_scales_with_answer_volume() {
        let m = SimLlm::new(test_kb(), ModelProfile::gpt3());
        let grid = |keys: Vec<String>, attributes: Vec<String>| {
            m.complete(&render_task(&TaskIntent::FetchGridBatch {
                relation: "city".into(),
                key_attr: "name".into(),
                keys,
                attributes,
            }))
        };
        let one = grid(vec!["Rome".into()], vec!["population".into()]);
        let four = grid(
            vec!["Rome".into(), "Milan".into()],
            vec!["population".into(), "country".into()],
        );
        // One fixed decode latency per prompt; four cells cost answer
        // tokens only — fusing attributes amortises exactly like fusing
        // keys.
        assert!(four.latency_ms > one.latency_ms);
        assert!(four.latency_ms < 4 * one.latency_ms);
    }

    #[test]
    fn batched_filter_answers_are_bit_identical_to_single_key_path() {
        let m = SimLlm::new(test_kb(), ModelProfile::chatgpt());
        let cond = Condition {
            attribute: "population".into(),
            op: CmpOp::Gt,
            values: vec![PromptValue::Number(1_000_000.0)],
        };
        let keys: Vec<String> = vec!["Rome".into(), "Lyon".into(), "Paris".into()];
        let batched = m
            .complete(&with_preamble(&render_task(&TaskIntent::FilterKeysBatch {
                relation: "city".into(),
                key_attr: "name".into(),
                keys: keys.clone(),
                condition: cond.clone(),
            })))
            .text;
        let split = crate::intent::split_batched_answer(&batched, &keys);
        for (key, sub) in keys.iter().zip(split) {
            let single = m
                .complete(&with_preamble(&render_task(&TaskIntent::CheckFilter {
                    relation: "city".into(),
                    key_attr: "name".into(),
                    key: key.clone(),
                    condition: cond.clone(),
                })))
                .text;
            assert_eq!(sub.as_deref(), Some(single.as_str()), "key {key}");
        }
    }

    #[test]
    fn batched_answer_latency_scales_with_answer_volume() {
        let m = SimLlm::new(test_kb(), ModelProfile::gpt3());
        let batch = |keys: Vec<String>| {
            m.complete(&render_task(&TaskIntent::FetchAttrBatch {
                relation: "city".into(),
                key_attr: "name".into(),
                keys,
                attribute: "population".into(),
            }))
        };
        let one = batch(vec!["Rome".into()]);
        let four = batch(vec![
            "Rome".into(),
            "Milan".into(),
            "Paris".into(),
            "Lyon".into(),
        ]);
        // One fixed decode latency per prompt; the marginal cost of extra
        // keys is answer tokens only — the economics batching exploits.
        assert!(four.latency_ms > one.latency_ms);
        assert!(four.latency_ms < 4 * one.latency_ms);
    }

    #[test]
    fn empty_batch_answers_unknown() {
        let m = oracle();
        let t = TaskIntent::FetchAttrBatch {
            relation: "city".into(),
            key_attr: "name".into(),
            keys: vec![],
            attribute: "population".into(),
        };
        // An empty key list cannot round-trip through the prompt (there is
        // no keys block), so the model sees it as a malformed question.
        assert_eq!(m.complete(&render_task(&t)).text, "Unknown");
    }

    #[test]
    fn unknown_relation_answers_unknown() {
        let m = oracle();
        let t = TaskIntent::ListKeys {
            relation: "volcano".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec![]),
        };
        assert_eq!(m.complete(&render_task(&t)).text, "Unknown");
    }

    #[test]
    fn nonsense_prompt_answers_unknown() {
        let m = oracle();
        assert_eq!(m.complete("How many squigs are in a bonk?").text, "Unknown");
    }

    #[test]
    fn small_models_recall_fewer_entities() {
        // Statistical check over a synthetic population.
        let mut kb = KnowledgeStore::new();
        for i in 0..300 {
            let e = kb.add_entity(format!("City{i}"), "city", (i as f64) / 300.0);
            kb.add_fact(e, "population", FactValue::Number(1000.0 + i as f64));
        }
        let kb = Arc::new(kb);
        let count = |p: ModelProfile| {
            let m = SimLlm::new(kb.clone(), p);
            kb.entities_of_type("city")
                .iter()
                .filter(|e| m.recalls(e))
                .count()
        };
        let flan = count(ModelProfile::flan());
        let chat = count(ModelProfile::chatgpt());
        let gpt3 = count(ModelProfile::gpt3());
        assert!(flan < chat, "flan {flan} vs chat {chat}");
        assert!(chat < gpt3, "chat {chat} vs gpt3 {gpt3}");
        assert!(gpt3 > 280);
    }

    #[test]
    fn sloppy_like_is_case_insensitive() {
        assert!(sloppy_like("Rome", "r%"));
        assert!(sloppy_like("ROME", "%ome"));
        assert!(!sloppy_like("Rome", "x%"));
    }
}
