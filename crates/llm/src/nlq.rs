//! Natural-language question protocol for the QA baselines.
//!
//! The paper compares Galois against asking the *same information need* as
//! a natural-language question `t` (result `T_M`), optionally with a
//! chain-of-thought prompt (`T_C_M`). Spider supplies those paraphrases;
//! our dataset substitute generates them from a [`QueryIntent`] using the
//! templates here, and the simulated LLM recovers the intent from the text
//! using the inverse parser, also here. Keeping both directions in one
//! module (with round-trip tests) is what keeps the "NL interface"
//! honest — only text crosses it.

use crate::intent::Condition;
use std::fmt;

/// Aggregate kinds in question templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `How many … exist?`
    Count,
    /// `the total …`
    Sum,
    /// `the average …`
    Avg,
    /// `the minimum …`
    Min,
    /// `the maximum …`
    Max,
}

impl AggKind {
    /// The English noun used in templates.
    pub fn word(&self) -> &'static str {
        match self {
            AggKind::Count => "number",
            AggKind::Sum => "total",
            AggKind::Avg => "average",
            AggKind::Min => "minimum",
            AggKind::Max => "maximum",
        }
    }

    /// Parses the English noun.
    pub fn from_word(w: &str) -> Option<AggKind> {
        Some(match w {
            "number" => AggKind::Count,
            "total" => AggKind::Sum,
            "average" => AggKind::Avg,
            "minimum" => AggKind::Min,
            "maximum" => AggKind::Max,
            _ => return None,
        })
    }
}

/// A one-hop join in a question: follow `via_attribute` of the primary
/// relation to a related entity and report its `related_attribute`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinIntent {
    /// Attribute of the primary relation whose value is the related entity
    /// (e.g. `mayor` on `city`).
    pub via_attribute: String,
    /// Attribute of the related entity to report (e.g. `birthDate`).
    pub related_attribute: String,
}

/// An aggregate request in a question.
#[derive(Debug, Clone, PartialEq)]
pub struct AggIntent {
    /// Aggregate kind.
    pub kind: AggKind,
    /// Aggregated attribute (`None` for COUNT over entries).
    pub attribute: Option<String>,
    /// Optional group-by attribute.
    pub group_by: Option<String>,
}

/// The information need behind an evaluation query, in the vocabulary of
/// the NL templates.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIntent {
    /// Primary relation (entity type).
    pub relation: String,
    /// Attributes of the primary relation to report (ignored when
    /// `aggregate` is set).
    pub select: Vec<String>,
    /// Optional filter.
    pub condition: Option<Condition>,
    /// Optional one-hop join.
    pub join: Option<JoinIntent>,
    /// Optional aggregate.
    pub aggregate: Option<AggIntent>,
}

impl fmt::Display for QueryIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", render_question(self))
    }
}

fn render_attr_list(attrs: &[String]) -> String {
    match attrs.len() {
        0 => String::new(),
        1 => attrs[0].clone(),
        n => format!("{} and {}", attrs[..n - 1].join(", "), attrs[n - 1]),
    }
}

fn parse_attr_list(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (head, last) = match text.rsplit_once(" and ") {
        Some((h, l)) => (h, Some(l)),
        None => (text, None),
    };
    for part in head.split(", ") {
        let p = part.trim();
        if !p.is_empty() {
            out.push(p.to_string());
        }
    }
    if let Some(l) = last {
        out.push(l.trim().to_string());
    }
    out
}

/// Renders the NL question for a [`QueryIntent`] (the paper's paraphrase
/// `t`).
pub fn render_question(q: &QueryIntent) -> String {
    let cond = q
        .condition
        .as_ref()
        .map(|c| format!(" whose {}", c.render()))
        .unwrap_or_default();
    match (&q.aggregate, &q.join) {
        (Some(agg), _) => match (&agg.group_by, agg.kind, &agg.attribute) {
            (None, AggKind::Count, _) => {
                format!("How many {} entries exist{cond}?", q.relation)
            }
            (None, kind, Some(attr)) => format!(
                "What is the {} {attr} of every {}{cond}?",
                kind.word(),
                q.relation
            ),
            (Some(group), AggKind::Count, _) => format!(
                "For each {group}, how many {} entries exist{cond}?",
                q.relation
            ),
            (Some(group), kind, Some(attr)) => format!(
                "For each {group}, what is the {} {attr} of every {}{cond}?",
                kind.word(),
                q.relation
            ),
            // COUNT is the only aggregate without an attribute.
            (_, _, None) => format!("How many {} entries exist{cond}?", q.relation),
        },
        (None, Some(join)) => format!(
            "List the {} of every {}{cond} together with the {} of its {}.",
            render_attr_list(&q.select),
            q.relation,
            join.related_attribute,
            join.via_attribute
        ),
        (None, None) => format!(
            "List the {} of every {}{cond}.",
            render_attr_list(&q.select),
            q.relation
        ),
    }
}

/// Parses an NL question back into a [`QueryIntent`]; the inverse of
/// [`render_question`].
pub fn parse_question(text: &str) -> Option<QueryIntent> {
    let t = text.trim();
    parse_count(t)
        .or_else(|| parse_agg(t))
        .or_else(|| parse_list(t))
}

/// Splits a trailing ` whose <condition>` from a phrase.
fn split_condition(body: &str) -> Option<(String, Option<Condition>)> {
    match body.split_once(" whose ") {
        Some((rel, cond)) => {
            let c = Condition::parse(cond)?;
            Some((rel.trim().to_string(), Some(c)))
        }
        None => Some((body.trim().to_string(), None)),
    }
}

fn parse_count(t: &str) -> Option<QueryIntent> {
    let (group_by, rest) = match t.strip_prefix("For each ") {
        Some(r) => {
            let (g, r) = r.split_once(", how many ")?;
            (Some(g.trim().to_string()), r)
        }
        None => (None, t.strip_prefix("How many ")?),
    };
    let body = rest.strip_suffix('?')?;
    let body = body
        .strip_suffix(" entries exist")
        .map(str::to_string)
        .or_else(|| {
            // Condition follows "exist".
            let (head, cond) = body.split_once(" entries exist whose ")?;
            Some(format!("{head} whose {cond}"))
        })?;
    let (relation, condition) = split_condition(&body)?;
    Some(QueryIntent {
        relation,
        select: vec![],
        condition,
        join: None,
        aggregate: Some(AggIntent {
            kind: AggKind::Count,
            attribute: None,
            group_by,
        }),
    })
}

fn parse_agg(t: &str) -> Option<QueryIntent> {
    let (group_by, rest) = match t.strip_prefix("For each ") {
        Some(r) => {
            let (g, r) = r.split_once(", what is the ")?;
            (Some(g.trim().to_string()), r)
        }
        None => (None, t.strip_prefix("What is the ")?),
    };
    let rest = rest.strip_suffix('?')?;
    let (agg_word, rest) = rest.split_once(' ')?;
    let kind = AggKind::from_word(agg_word)?;
    let (attr, body) = rest.split_once(" of every ")?;
    let (relation, condition) = split_condition(body)?;
    Some(QueryIntent {
        relation,
        select: vec![],
        condition,
        join: None,
        aggregate: Some(AggIntent {
            kind,
            attribute: Some(attr.trim().to_string()),
            group_by,
        }),
    })
}

fn parse_list(t: &str) -> Option<QueryIntent> {
    let rest = t.strip_prefix("List the ")?;
    let rest = rest.strip_suffix('.')?;
    let (attrs, body) = rest.split_once(" of every ")?;
    let (body, join) = match body.split_once(" together with the ") {
        Some((b, j)) => {
            let (related_attribute, via) = j.split_once(" of its ")?;
            (
                b,
                Some(JoinIntent {
                    via_attribute: via.trim().to_string(),
                    related_attribute: related_attribute.trim().to_string(),
                }),
            )
        }
        None => (body, None),
    };
    let (relation, condition) = split_condition(body)?;
    let select = parse_attr_list(attrs);
    if select.is_empty() {
        return None;
    }
    Some(QueryIntent {
        relation,
        select,
        condition,
        join,
        aggregate: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::{CmpOp, PromptValue};

    fn cond_gt(attr: &str, n: f64) -> Condition {
        Condition {
            attribute: attr.into(),
            op: CmpOp::Gt,
            values: vec![PromptValue::Number(n)],
        }
    }

    fn roundtrip(q: QueryIntent) {
        let text = render_question(&q);
        let parsed = parse_question(&text).unwrap_or_else(|| panic!("parse failed: {text}"));
        assert_eq!(parsed, q, "{text}");
    }

    #[test]
    fn list_roundtrip() {
        roundtrip(QueryIntent {
            relation: "city".into(),
            select: vec!["name".into()],
            condition: Some(cond_gt("population", 1e6)),
            join: None,
            aggregate: None,
        });
    }

    #[test]
    fn multi_attr_list_roundtrip() {
        roundtrip(QueryIntent {
            relation: "country".into(),
            select: vec!["name".into(), "capital".into(), "gdp".into()],
            condition: None,
            join: None,
            aggregate: None,
        });
    }

    #[test]
    fn join_roundtrip() {
        roundtrip(QueryIntent {
            relation: "city".into(),
            select: vec!["name".into()],
            condition: Some(cond_gt("population", 5e5)),
            join: Some(JoinIntent {
                via_attribute: "mayor".into(),
                related_attribute: "birthDate".into(),
            }),
            aggregate: None,
        });
    }

    #[test]
    fn count_roundtrip() {
        roundtrip(QueryIntent {
            relation: "airport".into(),
            select: vec![],
            condition: Some(cond_gt("elevation", 1000.0)),
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Count,
                attribute: None,
                group_by: None,
            }),
        });
        roundtrip(QueryIntent {
            relation: "airport".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Count,
                attribute: None,
                group_by: None,
            }),
        });
    }

    #[test]
    fn avg_roundtrip() {
        roundtrip(QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Avg,
                attribute: Some("population".into()),
                group_by: None,
            }),
        });
    }

    #[test]
    fn group_by_roundtrips() {
        roundtrip(QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Count,
                attribute: None,
                group_by: Some("country".into()),
            }),
        });
        roundtrip(QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: Some(cond_gt("population", 1000.0)),
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Max,
                attribute: Some("population".into()),
                group_by: Some("country".into()),
            }),
        });
    }

    #[test]
    fn rendered_questions_read_naturally() {
        let q = QueryIntent {
            relation: "city".into(),
            select: vec!["name".into()],
            condition: Some(cond_gt("population", 1e6)),
            join: None,
            aggregate: None,
        };
        assert_eq!(
            render_question(&q),
            "List the name of every city whose population is greater than 1000000."
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_question("Tell me about Rome").is_none());
        assert!(parse_question("").is_none());
        assert!(parse_question("List the . of every ?").is_none());
    }
}
