//! The simulated model's "parameters": a knowledge store of entities and
//! facts.
//!
//! The paper observes that LLMs "model existing relationships between
//! entities … or between entities and their properties" but have no notion
//! of schema or tuple (§3). The store mirrors that: it is a bag of
//! `(subject, predicate, object)` facts over typed, popularity-ranked
//! entities — not a relational database. Popularity drives recall ("the
//! default semantics for the LLM is to pick the most popular
//! interpretation"), and aliases model the surface-form variance that
//! breaks joins ("IT" vs "ITA", §5).

use std::collections::HashMap;

/// Identifier of an entity inside a knowledge store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// A known entity.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Identifier.
    pub id: EntityId,
    /// Canonical surface form (e.g. `"Rome"`).
    pub name: String,
    /// Entity type, lowercase (e.g. `"city"`).
    pub entity_type: String,
    /// Popularity in `[0, 1]`; drives recall probability and list order.
    pub popularity: f64,
    /// Alternative surface forms (e.g. `["ITA", "Italian Republic"]`).
    pub aliases: Vec<String>,
}

/// The object of a fact.
#[derive(Debug, Clone, PartialEq)]
pub enum FactValue {
    /// Free text.
    Text(String),
    /// A number (integers are exact within f64 range at our data scales).
    Number(f64),
    /// A calendar date.
    Date {
        /// Year.
        year: i32,
        /// Month 1–12.
        month: u8,
        /// Day 1–31.
        day: u8,
    },
    /// Reference to another entity (joins traverse these).
    Entity(EntityId),
}

/// A knowledge store: entities plus `(subject, predicate) → object` facts.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeStore {
    entities: Vec<Entity>,
    by_type: HashMap<String, Vec<EntityId>>,
    by_name: HashMap<(String, String), EntityId>,
    facts: HashMap<(EntityId, String), FactValue>,
    /// Predicate synonym lexicon: surface label → canonical predicate.
    lexicon: HashMap<String, String>,
}

impl KnowledgeStore {
    /// An empty store.
    pub fn new() -> Self {
        KnowledgeStore::default()
    }

    /// Adds an entity and returns its id. Popularity is clamped to [0, 1].
    pub fn add_entity(
        &mut self,
        name: impl Into<String>,
        entity_type: impl Into<String>,
        popularity: f64,
    ) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        let name = name.into();
        let entity_type = entity_type.into().to_ascii_lowercase();
        self.by_type
            .entry(entity_type.clone())
            .or_default()
            .push(id);
        self.by_name
            .insert((entity_type.clone(), name.to_ascii_lowercase()), id);
        self.entities.push(Entity {
            id,
            name,
            entity_type,
            popularity: popularity.clamp(0.0, 1.0),
            aliases: Vec::new(),
        });
        id
    }

    /// Registers an alias surface form for an entity.
    pub fn add_alias(&mut self, id: EntityId, alias: impl Into<String>) {
        let alias = alias.into();
        let ty = self.entities[id.0 as usize].entity_type.clone();
        self.by_name.insert((ty, alias.to_ascii_lowercase()), id);
        self.entities[id.0 as usize].aliases.push(alias);
    }

    /// Records a fact `(subject, predicate) → object` (canonicalising the
    /// predicate through the lexicon).
    pub fn add_fact(&mut self, subject: EntityId, predicate: impl Into<String>, object: FactValue) {
        let p = self.canonical_predicate(&predicate.into());
        self.facts.insert((subject, p), object);
    }

    /// Registers a predicate synonym: prompts that say `label` mean
    /// `canonical`.
    pub fn add_synonym(&mut self, label: impl Into<String>, canonical: impl Into<String>) {
        self.lexicon.insert(
            label.into().to_ascii_lowercase(),
            canonical.into().to_ascii_lowercase(),
        );
    }

    /// Maps a surface attribute label to its canonical predicate.
    pub fn canonical_predicate(&self, label: &str) -> String {
        let lower = label.to_ascii_lowercase();
        self.lexicon.get(&lower).cloned().unwrap_or(lower)
    }

    /// The entity with this id.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.0 as usize]
    }

    /// All entities of a type, most popular first.
    pub fn entities_of_type(&self, entity_type: &str) -> Vec<&Entity> {
        let ty = entity_type.to_ascii_lowercase();
        let mut v: Vec<&Entity> = self
            .by_type
            .get(&ty)
            .map(|ids| ids.iter().map(|id| self.entity(*id)).collect())
            .unwrap_or_default();
        v.sort_by(|a, b| {
            b.popularity
                .total_cmp(&a.popularity)
                .then_with(|| a.name.cmp(&b.name))
        });
        v
    }

    /// All entity types present.
    pub fn entity_types(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_type.keys().cloned().collect();
        v.sort();
        v
    }

    /// Resolves a surface form (name or alias) of a given type.
    pub fn resolve(&self, entity_type: &str, surface: &str) -> Option<EntityId> {
        self.by_name
            .get(&(
                entity_type.to_ascii_lowercase(),
                surface.trim().to_ascii_lowercase(),
            ))
            .copied()
    }

    /// Looks up a fact by subject and (surface) predicate label.
    pub fn fact(&self, subject: EntityId, predicate: &str) -> Option<&FactValue> {
        self.facts
            .get(&(subject, self.canonical_predicate(predicate)))
    }

    /// True if the store knows the given predicate for *any* subject of the
    /// given type (used to distinguish "unknown attribute" from "unknown
    /// value").
    pub fn type_has_predicate(&self, entity_type: &str, predicate: &str) -> bool {
        let p = self.canonical_predicate(predicate);
        self.by_type
            .get(&entity_type.to_ascii_lowercase())
            .map(|ids| {
                ids.iter()
                    .any(|id| self.facts.contains_key(&(*id, p.clone())))
            })
            .unwrap_or(false)
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KnowledgeStore {
        let mut kb = KnowledgeStore::new();
        let rome = kb.add_entity("Rome", "city", 0.95);
        let lyon = kb.add_entity("Lyon", "city", 0.4);
        let italy = kb.add_entity("Italy", "country", 0.9);
        kb.add_alias(italy, "IT");
        kb.add_fact(rome, "population", FactValue::Number(2_800_000.0));
        kb.add_fact(rome, "country", FactValue::Entity(italy));
        kb.add_fact(lyon, "population", FactValue::Number(500_000.0));
        kb.add_synonym("number of residents", "population");
        kb
    }

    #[test]
    fn entities_sorted_by_popularity() {
        let kb = store();
        let cities = kb.entities_of_type("city");
        assert_eq!(cities.len(), 2);
        assert_eq!(cities[0].name, "Rome");
        assert_eq!(cities[1].name, "Lyon");
    }

    #[test]
    fn resolve_by_name_and_alias_case_insensitive() {
        let kb = store();
        let italy = kb.resolve("country", "italy").unwrap();
        assert_eq!(kb.resolve("country", "it"), Some(italy));
        assert_eq!(kb.resolve("country", "IT "), Some(italy));
        assert!(kb.resolve("city", "Italy").is_none());
    }

    #[test]
    fn facts_and_synonyms() {
        let kb = store();
        let rome = kb.resolve("city", "Rome").unwrap();
        assert_eq!(
            kb.fact(rome, "population"),
            Some(&FactValue::Number(2_800_000.0))
        );
        assert_eq!(
            kb.fact(rome, "Number of Residents"),
            Some(&FactValue::Number(2_800_000.0))
        );
        assert!(kb.fact(rome, "elevation").is_none());
    }

    #[test]
    fn type_has_predicate() {
        let kb = store();
        assert!(kb.type_has_predicate("city", "population"));
        assert!(!kb.type_has_predicate("city", "elevation"));
        assert!(!kb.type_has_predicate("volcano", "population"));
    }

    #[test]
    fn unknown_type_is_empty() {
        let kb = store();
        assert!(kb.entities_of_type("volcano").is_empty());
        assert_eq!(kb.entity_types(), vec!["city", "country"]);
    }

    #[test]
    fn popularity_is_clamped() {
        let mut kb = KnowledgeStore::new();
        let e = kb.add_entity("X", "t", 7.0);
        assert_eq!(kb.entity(e).popularity, 1.0);
    }
}
