//! The text-in/text-out language-model interface.
//!
//! This is the only surface Galois sees: it renders a prompt string, gets a
//! completion string back, and must parse whatever comes out. Keeping the
//! boundary purely textual is what makes the simulation exercise the same
//! code paths as a real LLM deployment (DESIGN.md §1).

use std::fmt;

/// Token usage of one completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
}

impl Usage {
    /// Total tokens (prompt + completion).
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// The result of one model call.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The completion text.
    pub text: String,
    /// Token accounting.
    pub usage: Usage,
    /// Simulated latency of this call in milliseconds (virtual clock; no
    /// real time passes).
    pub latency_ms: u64,
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// How one model request failed (the request-level signal a real API
/// surfaces through HTTP status codes and `finish_reason` fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A transient server-side error (5xx): nothing about the prompt was
    /// at fault and an immediate retry may succeed.
    Transient,
    /// The request exceeded its deadline; the fault's degraded completion
    /// carries the latency spike that was spent waiting.
    Timeout,
    /// The provider shed load (429): retry only after backing off.
    RateLimit,
    /// The completion came back truncated or garbled (`finish_reason:
    /// length`, a mangled stream): detectable at the request level, so a
    /// resilient client can re-ask, but the degraded completion still
    /// carries the corrupted text a non-resilient caller would have seen.
    Truncated,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Timeout => write!(f, "timeout"),
            FaultKind::RateLimit => write!(f, "rate-limit"),
            FaultKind::Truncated => write!(f, "truncated"),
        }
    }
}

/// A failed model request: the failure class plus the *degraded
/// completion* a caller without retries observes — fault-marker text (or
/// corrupted answer text for [`FaultKind::Truncated`]) whose latency is
/// still billed, because a failed request costs real wait time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Failure class.
    pub kind: FaultKind,
    /// What a caller that does not retry gets back.
    pub degraded: Completion,
}

/// A pre-trained language model: prompt text in, completion text out.
///
/// Implementations must be deterministic functions of the prompt (the
/// simulator derives its noise from a hash of the prompt and a model seed),
/// so that experiments are reproducible.
pub trait LanguageModel: Send + Sync {
    /// Model identifier, e.g. `"chatgpt"`.
    fn name(&self) -> &str;

    /// Maximum context size in tokens; prompts longer than this are
    /// truncated by the model (head-preserving), mirroring real APIs.
    fn context_window(&self) -> usize;

    /// Runs one completion.
    fn complete(&self, prompt: &str) -> Completion;

    /// Runs one completion, surfacing request-level failures. The default
    /// never fails — reliable models keep their `complete` behaviour
    /// bit for bit; fault-injecting wrappers ([`crate::FaultyLlm`])
    /// override this, and the resilient client retries on `Err`.
    fn try_complete(&self, prompt: &str) -> Result<Completion, Fault> {
        Ok(self.complete(prompt))
    }

    /// Fingerprint of the model's *answering behaviour*, used to key
    /// cross-query stores (the key-universe store keeps listed keys only
    /// as long as the model that produced them is answering). The default
    /// is the model name; implementations whose answers depend on further
    /// configuration (noise profiles, seeds, sampling knobs) must fold
    /// every answer-affecting field in, so a configuration change
    /// invalidates stored universes cleanly.
    fn signature(&self) -> String {
        self.name().to_string()
    }
}

/// A trivial model for tests: echoes a fixed response.
#[derive(Debug, Clone)]
pub struct FixedResponder {
    /// Name reported by the model.
    pub model_name: String,
    /// Response returned for every prompt.
    pub response: String,
}

impl LanguageModel for FixedResponder {
    fn name(&self) -> &str {
        &self.model_name
    }

    fn context_window(&self) -> usize {
        4096
    }

    fn complete(&self, prompt: &str) -> Completion {
        Completion {
            text: self.response.clone(),
            usage: Usage {
                prompt_tokens: crate::tokenizer::count_tokens(prompt),
                completion_tokens: crate::tokenizer::count_tokens(&self.response),
            },
            latency_ms: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_total() {
        let u = Usage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
    }

    #[test]
    fn fixed_responder_echoes() {
        let m = FixedResponder {
            model_name: "fixed".into(),
            response: "Paris".into(),
        };
        let c = m.complete("What is the capital of France?");
        assert_eq!(c.text, "Paris");
        assert!(c.usage.prompt_tokens > 0);
    }
}
