//! Approximate tokenizer.
//!
//! Real LLM APIs bill and truncate by BPE tokens. For the simulation we use
//! a cheap approximation — whitespace/punctuation pieces, with long words
//! split every four characters — which is within ~20% of GPT-style BPE
//! counts on English prose and is deterministic and dependency-free.

/// Counts approximate tokens in `text`.
pub fn count_tokens(text: &str) -> usize {
    split_pieces(text).count()
}

/// Truncates `text` to at most `max_tokens` tokens, preserving the head.
/// Returns the text unchanged when it fits.
pub fn truncate_tokens(text: &str, max_tokens: usize) -> &str {
    let mut remaining = max_tokens;
    let mut end = 0usize;
    for (piece_start, piece_len) in piece_spans(text) {
        if remaining == 0 {
            return &text[..end];
        }
        remaining -= 1;
        end = piece_start + piece_len;
    }
    text
}

fn split_pieces(text: &str) -> impl Iterator<Item = &str> {
    piece_spans(text).map(move |(s, l)| &text[s..s + l])
}

/// Yields `(start, len)` byte spans of token pieces.
fn piece_spans(text: &str) -> impl Iterator<Item = (usize, usize)> + '_ {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        let start = i;
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b >= 0x80 {
            // Word piece: up to 4 chars of a word run.
            let mut taken = 0;
            while i < bytes.len() && taken < 4 {
                let c = bytes[i];
                if c.is_ascii_alphanumeric() || c >= 0x80 {
                    // Advance one UTF-8 character.
                    let ch_len = utf8_len(c);
                    i += ch_len;
                    taken += 1;
                } else {
                    break;
                }
            }
        } else {
            // Punctuation: one token per character.
            i += 1;
        }
        Some((start, i - start))
    })
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(count_tokens("the cat sat"), 3);
    }

    #[test]
    fn long_words_split() {
        // "population" = 10 chars → 3 pieces (4+4+2).
        assert_eq!(count_tokens("population"), 3);
    }

    #[test]
    fn punctuation_counts() {
        assert_eq!(count_tokens("a, b."), 4); // a , b .
    }

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t "), 0);
    }

    #[test]
    fn unicode_does_not_panic_or_split_chars() {
        let s = "Zürich Köln Москва";
        let n = count_tokens(s);
        assert!(n >= 3);
        // Truncation must never split a UTF-8 character.
        for max in 0..=n {
            let t = truncate_tokens(s, max);
            assert!(s.starts_with(t));
            assert!(std::str::from_utf8(t.as_bytes()).is_ok());
        }
    }

    #[test]
    fn truncate_preserves_head() {
        let s = "one two three four";
        assert_eq!(truncate_tokens(s, 2).trim_end(), "one two");
        assert_eq!(truncate_tokens(s, 100), s);
        assert_eq!(truncate_tokens(s, 0), "");
    }
}
