//! Model profiles: the four LLMs of the paper's evaluation (§5 "Setup").
//!
//! Each profile is a parameter vector for the simulator's noise channels,
//! calibrated so the *shape* of the paper's Tables 1–2 reproduces:
//!
//! | model   | paper's finding                                   | main dials |
//! |---------|---------------------------------------------------|------------|
//! | Flan    | −47.4% cardinality: misses half the rows          | low recall, tiny context window |
//! | TK      | −43.7%: slightly better than Flan                 | low recall, tiny context window |
//! | GPT-3   | +1.0%: near-perfect counts, slight over-generation| high recall, hallucination adds rows |
//! | ChatGPT | −19.5% but best content accuracy                  | good recall, verbose but accurate |
//!
//! The absolute values are not the target (our substrate is a simulator);
//! the ordering and rough magnitudes are.

/// Parameter vector of one simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Identifier (`flan`, `tk`, `gpt3`, `chatgpt`).
    pub name: String,
    /// Reported parameter count (cosmetic, shown in reports).
    pub params: String,
    /// Deterministic noise seed; combined with prompt hashes.
    pub seed: u64,
    /// Context window in tokens; prompts are truncated to this.
    pub context_window: usize,
    /// Recall probability for the *most* popular entity of a type.
    pub recall_top: f64,
    /// Recall probability for the *least* popular entity (linear in
    /// popularity between the two).
    pub recall_floor: f64,
    /// Probability of answering "Unknown" for a fact the store contains.
    pub unknown_rate: f64,
    /// Probability a remembered fact value is wrong.
    pub value_error_rate: f64,
    /// Relative error applied to wrong numeric values.
    pub value_rel_err: f64,
    /// Probability of inventing extra entities per list page.
    pub hallucination_rate: f64,
    /// Probability of fabricating a value for an entity the store does not
    /// know at all (instead of admitting "Unknown").
    pub fabrication_rate: f64,
    /// Probability an entity-valued answer uses an alias instead of the
    /// canonical name.
    pub alias_rate: f64,
    /// Probability a code-labelled context settles on a non-canonical code
    /// standard (the "IT" vs "ITA" join breaker, §5).
    pub code_drift: f64,
    /// Probability of non-plain number/date formats in answers.
    pub format_noise: f64,
    /// Probability a boolean filter answer flips.
    pub filter_flip_rate: f64,
    /// Extra flip probability when a condition is evaluated inside a
    /// combined (pushed-down) list prompt — the paper's observation that
    /// "combining too many prompts leads to complex questions that have
    /// lower accuracy than simple ones" (§6).
    pub combined_condition_penalty: f64,
    /// Relative error of arithmetic the model performs itself (QA
    /// aggregates; LLMs "fail with numerical comparisons", §3).
    pub arithmetic_rel_err: f64,
    /// Arithmetic error multiplier under chain-of-thought prompting
    /// (Table 2 shows CoT *hurt* aggregates: 13% vs 20%).
    pub cot_arithmetic_factor: f64,
    /// Probability of dropping a row from a QA answer (models tire of
    /// long enumerations).
    pub qa_row_dropout: f64,
    /// Probability that the join hop of a one-shot NL question fails for a
    /// row (multi-hop reasoning is hard in a single completion; Table 2
    /// reports 8% for `T_M` joins and 0% with CoT).
    pub qa_join_dropout: f64,
    /// Items returned per list page before the caller must ask for more.
    pub list_page_size: usize,
    /// Whether answers are wrapped in chatty prose.
    pub verbose: bool,
    /// Base latency per prompt in virtual milliseconds.
    pub latency_ms: u64,
    /// Additional latency per completion token, virtual milliseconds.
    pub latency_per_token_ms: u64,
}

impl ModelProfile {
    /// Recall probability for an entity of the given popularity in [0, 1].
    pub fn recall_probability(&self, popularity: f64) -> f64 {
        let p = popularity.clamp(0.0, 1.0);
        (self.recall_floor + (self.recall_top - self.recall_floor) * p).clamp(0.0, 1.0)
    }

    /// Flan-T5-large: instruction-tuned 783M model. Small context and low
    /// recall produce the paper's large cardinality deficit.
    pub fn flan() -> Self {
        ModelProfile {
            name: "flan".into(),
            params: "783M".into(),
            seed: 0xF1A5,
            context_window: 512,
            recall_top: 0.26,
            recall_floor: 0.015,
            unknown_rate: 0.10,
            value_error_rate: 0.30,
            value_rel_err: 0.25,
            hallucination_rate: 0.10,
            fabrication_rate: 0.25,
            alias_rate: 0.70,
            code_drift: 0.90,
            format_noise: 0.35,
            filter_flip_rate: 0.18,
            combined_condition_penalty: 0.38,
            arithmetic_rel_err: 0.45,
            cot_arithmetic_factor: 1.3,
            qa_row_dropout: 0.35,
            qa_join_dropout: 0.95,
            list_page_size: 8,
            verbose: false,
            latency_ms: 40,
            latency_per_token_ms: 1,
        }
    }

    /// Tk-Instruct-large: 783M with positive/negative few-shot examples.
    /// Marginally better recall than Flan, same small context.
    pub fn tk() -> Self {
        ModelProfile {
            name: "tk".into(),
            params: "783M".into(),
            seed: 0x7C1E,
            context_window: 512,
            recall_top: 0.28,
            recall_floor: 0.02,
            unknown_rate: 0.09,
            value_error_rate: 0.28,
            value_rel_err: 0.22,
            hallucination_rate: 0.08,
            fabrication_rate: 0.22,
            alias_rate: 0.68,
            code_drift: 0.88,
            format_noise: 0.32,
            filter_flip_rate: 0.16,
            combined_condition_penalty: 0.34,
            arithmetic_rel_err: 0.40,
            cot_arithmetic_factor: 1.3,
            qa_row_dropout: 0.30,
            qa_join_dropout: 0.93,
            list_page_size: 8,
            verbose: false,
            latency_ms: 45,
            latency_per_token_ms: 1,
        }
    }

    /// InstructGPT-3 (175B): near-complete recall plus a tendency to keep
    /// generating — hallucinated rows slightly *over*-fill results (+1.0%
    /// in Table 1).
    pub fn gpt3() -> Self {
        ModelProfile {
            name: "gpt3".into(),
            params: "175B".into(),
            seed: 0x69B7,
            context_window: 4_096,
            recall_top: 1.0,
            recall_floor: 0.96,
            unknown_rate: 0.03,
            value_error_rate: 0.18,
            value_rel_err: 0.15,
            hallucination_rate: 0.10,
            fabrication_rate: 0.35,
            alias_rate: 0.20,
            code_drift: 0.20,
            format_noise: 0.30,
            filter_flip_rate: 0.10,
            combined_condition_penalty: 0.24,
            arithmetic_rel_err: 0.30,
            cot_arithmetic_factor: 1.2,
            qa_row_dropout: 0.12,
            qa_join_dropout: 0.85,
            list_page_size: 20,
            verbose: false,
            latency_ms: 200,
            latency_per_token_ms: 5,
        }
    }

    /// GPT-3.5-turbo (ChatGPT): best content accuracy, chat-style verbose
    /// answers, moderate recall loss on unpopular entities (−19.5% rows).
    pub fn chatgpt() -> Self {
        ModelProfile {
            name: "chatgpt".into(),
            params: "175B".into(),
            seed: 0xC4A7,
            context_window: 4_096,
            recall_top: 0.99,
            recall_floor: 0.72,
            unknown_rate: 0.04,
            value_error_rate: 0.08,
            value_rel_err: 0.10,
            hallucination_rate: 0.02,
            fabrication_rate: 0.15,
            alias_rate: 0.98,
            code_drift: 0.75,
            format_noise: 0.55,
            filter_flip_rate: 0.08,
            combined_condition_penalty: 0.22,
            arithmetic_rel_err: 0.15,
            cot_arithmetic_factor: 1.6,
            qa_row_dropout: 0.10,
            qa_join_dropout: 0.80,
            list_page_size: 15,
            verbose: true,
            latency_ms: 160,
            latency_per_token_ms: 4,
        }
    }

    /// All four evaluation profiles, in the paper's table order.
    pub fn all() -> Vec<ModelProfile> {
        vec![Self::flan(), Self::tk(), Self::gpt3(), Self::chatgpt()]
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// A noise-free profile for deterministic engine tests: perfect recall,
    /// exact values, plain formats.
    pub fn oracle() -> Self {
        ModelProfile {
            name: "oracle".into(),
            params: "n/a".into(),
            seed: 0,
            context_window: 1 << 20,
            recall_top: 1.0,
            recall_floor: 1.0,
            unknown_rate: 0.0,
            value_error_rate: 0.0,
            value_rel_err: 0.0,
            hallucination_rate: 0.0,
            fabrication_rate: 0.0,
            alias_rate: 0.0,
            code_drift: 0.0,
            format_noise: 0.0,
            filter_flip_rate: 0.0,
            combined_condition_penalty: 0.0,
            arithmetic_rel_err: 0.0,
            cot_arithmetic_factor: 1.0,
            qa_row_dropout: 0.0,
            qa_join_dropout: 0.0,
            list_page_size: 1000,
            verbose: false,
            latency_ms: 1,
            latency_per_token_ms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_is_monotone_in_popularity() {
        for p in ModelProfile::all() {
            assert!(p.recall_probability(1.0) >= p.recall_probability(0.5));
            assert!(p.recall_probability(0.5) >= p.recall_probability(0.0));
            assert!(p.recall_probability(1.0) <= 1.0);
            assert!(p.recall_probability(0.0) >= 0.0);
        }
    }

    #[test]
    fn ordering_of_model_capability() {
        let flan = ModelProfile::flan();
        let tk = ModelProfile::tk();
        let gpt3 = ModelProfile::gpt3();
        let chat = ModelProfile::chatgpt();
        // Mean recall ordering mirrors Table 1's cardinality ordering.
        let mean = |p: &ModelProfile| (p.recall_top + p.recall_floor) / 2.0;
        assert!(mean(&flan) < mean(&tk));
        assert!(mean(&tk) < mean(&chat));
        assert!(mean(&chat) < mean(&gpt3));
        // ChatGPT has the most accurate values (Table 2 is measured on it).
        assert!(chat.value_error_rate < gpt3.value_error_rate);
        assert!(chat.value_error_rate < tk.value_error_rate);
    }

    #[test]
    fn lookup_by_name() {
        assert!(ModelProfile::by_name("ChatGPT").is_some());
        assert!(ModelProfile::by_name("gpt3").is_some());
        assert!(ModelProfile::by_name("claude").is_none());
    }

    #[test]
    fn oracle_is_noise_free() {
        let o = ModelProfile::oracle();
        assert_eq!(o.recall_probability(0.0), 1.0);
        assert_eq!(o.value_error_rate, 0.0);
        assert_eq!(o.format_noise, 0.0);
    }
}
