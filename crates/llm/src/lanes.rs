//! Virtual request lanes: the concurrency model of the simulated clock.
//!
//! The paper's latency numbers (§5: ~20 s and ~110 batched prompts per
//! query) assume every prompt decodes sequentially. A production deployment
//! would instead hold `K` concurrent request lanes open against the
//! provider; independent prompts then cost `max` over lanes rather than
//! `sum` over members. [`Parallelism`] is that knob, and [`lane_schedule`]
//! is the accounting rule shared by the client's per-batch clock and the
//! session scheduler's per-wave clock.
//!
//! `Parallelism::new(1)` reproduces the original sequential accounting
//! bit-for-bit: with one lane, `lane_schedule` degenerates to a plain sum.
//!
//! The knob applies *per scheduling level*: a batch's members decode
//! across `K` provider streams, a wave's independent batches occupy `K`
//! request lanes, and the harness may additionally run `K` concurrent
//! query streams. Because the levels compose, an end-to-end speedup can
//! exceed `K` (it is bounded by the product of the levels involved) — the
//! model is "each scheduling point sees `K`-way concurrency", not a
//! single global pool of `K` connections.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Number of concurrent request lanes a deployment offers.
///
/// The same value drives two things:
///
/// * the **virtual clock** — a batch of `n` independent prompts costs
///   `overhead + max(lane sums)` across `K` simulated lanes instead of
///   `overhead + sum`, and a wave of independent work units is packed onto
///   `K` lanes the same way;
/// * the **real worker pool** — the session scheduler runs at most `K`
///   retrieval units on OS threads at once.
///
/// Values are clamped to at least 1; `Parallelism::default()` is 1, the
/// paper-faithful sequential configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Creates a knob with `lanes` request lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        Parallelism(lanes.max(1))
    }

    /// The number of lanes.
    pub fn get(self) -> usize {
        self.0
    }

    /// True for the single-lane (paper-faithful, sequential) setting.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism(1)
    }
}

impl From<usize> for Parallelism {
    fn from(lanes: usize) -> Self {
        Parallelism::new(lanes)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lane count at which [`lane_schedule`] switches from the per-item
/// min-scan to the binary heap. Below it a linear scan over the lane
/// loads stays within a couple of cache lines and beats the heap's
/// pointer shuffling; at and above it the heap's `O(log K)` lookup wins
/// (measured crossover ≈ 32 on 10k-item waves — see the `lanes` criterion
/// bench).
const HEAP_LANES_MIN: usize = 32;

/// Greedy multi-lane makespan.
///
/// Durations are assigned in submission order, each to the currently
/// least-loaded lane (lowest lane index wins ties, so equal durations
/// round-robin deterministically); the result is the maximum lane total.
/// With one lane this is exactly the sum of the durations — the
/// pre-scheduler accounting.
///
/// Semantically this is [`EventClock`] with every release time at zero: a
/// wave is the degenerate pipeline in which all work is ready at once.
/// Wide waves delegate to exactly that (heap-backed, `O(n log K)`);
/// narrow ones keep the `O(n·K)` min-scan, which is faster below 32
/// lanes (the measured crossover, `HEAP_LANES_MIN`). Both paths make the
/// same assignments with the same tie-breaks — bit-identical makespans.
pub fn lane_schedule<I>(durations: I, lanes: usize) -> u64
where
    I: IntoIterator<Item = u64>,
{
    let lanes = lanes.max(1);
    if lanes == 1 {
        return durations.into_iter().sum();
    }
    if lanes >= HEAP_LANES_MIN {
        let mut clock = EventClock::new(lanes);
        for d in durations {
            clock.schedule(0, d);
        }
        return clock.makespan();
    }
    let mut load = vec![0u64; lanes];
    for d in durations {
        let min = (0..lanes)
            .min_by_key(|&i| load[i])
            .expect("at least one lane");
        load[min] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Event-driven virtual clock: `K` request lanes serving tasks that become
/// ready at arbitrary *release times*.
///
/// [`lane_schedule`] models a **wave**: all work is ready at once, so the
/// makespan is a pure packing problem. A pipelined execution instead
/// releases work as upstream answers land — a filter micro-batch cannot
/// start before the list page that produced its keys has decoded. The
/// event clock generalises the accounting: each task is released at some
/// virtual instant, claims the earliest-free lane (lowest lane index wins
/// ties), starts at `max(release, lane free time)`, and completes after
/// its duration. [`EventClock::schedule`] returns that per-task completion
/// time, which is what drives the streaming session driver's dataflow —
/// downstream accumulators see keys at the completion times the clock
/// hands back.
///
/// Tasks must be scheduled in a deterministic order (the session driver
/// processes completion events in `(time, sequence)` order), which makes
/// the whole simulation a pure function of the work — never of OS thread
/// timing. With one lane the clock degenerates to a running sum exactly
/// like the wave accounting.
#[derive(Debug, Clone)]
pub struct EventClock {
    /// Min-heap of `(free_at, lane index)`: the earliest-free lane is
    /// always at the top, with ties resolved towards the lowest index.
    free: BinaryHeap<Reverse<(u64, usize)>>,
    lanes: usize,
    makespan: u64,
}

impl EventClock {
    /// A clock with `lanes` request lanes (clamped to ≥ 1), all free at
    /// virtual time zero.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        EventClock {
            free: (0..lanes).map(|i| Reverse((0, i))).collect(),
            lanes,
            makespan: 0,
        }
    }

    /// The lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Schedules a task released at `release` with `duration` on the
    /// earliest-free lane and returns its completion time.
    ///
    /// The task starts at `max(release, lane free time)`: a lane that
    /// idles until the release still counts as free (idle time is lost,
    /// not banked). Ties between equally-free lanes go to the lowest lane
    /// index, matching [`lane_schedule`]'s round-robin determinism.
    pub fn schedule(&mut self, release: u64, duration: u64) -> u64 {
        let Reverse((free_at, lane)) = self.free.pop().expect("at least one lane");
        let done = free_at.max(release) + duration;
        self.free.push(Reverse((done, lane)));
        self.makespan = self.makespan.max(done);
        done
    }

    /// The latest completion time scheduled so far (zero when no task has
    /// been scheduled).
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of lanes idle at virtual time `t` (free at or before it).
    ///
    /// The streaming driver uses this as its micro-batch flush trigger: a
    /// partial batch held back while lanes sit idle is pure latency, so
    /// once every event at `t` has resolved, idle capacity releases the
    /// accumulators early.
    pub fn idle_lanes(&self, t: u64) -> usize {
        self.free
            .iter()
            .filter(|Reverse((free_at, _))| *free_at <= t)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_lane_is_a_sum() {
        assert_eq!(lane_schedule([3, 5, 7], 1), 15);
        assert_eq!(lane_schedule([], 1), 0);
    }

    #[test]
    fn equal_durations_round_robin() {
        // 8 × 10ms over 4 lanes: two per lane.
        assert_eq!(lane_schedule(std::iter::repeat_n(10, 8), 4), 20);
    }

    #[test]
    fn more_lanes_than_work_costs_the_longest_item() {
        assert_eq!(lane_schedule([5, 9, 2], 16), 9);
    }

    #[test]
    fn greedy_balances_uneven_durations() {
        // 10 goes to lane 0, 1s pack onto lane 1: makespan 10, not 13.
        assert_eq!(lane_schedule([10, 1, 1, 1], 2), 10);
    }

    #[test]
    fn makespan_never_beats_the_critical_path_or_the_mean() {
        let durations = [7u64, 3, 9, 4, 1, 12, 5];
        let total: u64 = durations.iter().sum();
        for lanes in 1..6 {
            let m = lane_schedule(durations, lanes);
            assert!(m >= total.div_ceil(lanes as u64));
            assert!(m >= 12); // longest single duration
            assert!(m <= total);
        }
    }

    #[test]
    fn heap_schedule_matches_reference_min_scan() {
        // The pre-heap formulation, kept as the reference: O(lanes)
        // min-scan per item, first minimal lane wins.
        fn reference(durations: &[u64], lanes: usize) -> u64 {
            let mut load = vec![0u64; lanes];
            for &d in durations {
                let min = (0..lanes)
                    .min_by_key(|&i| load[i])
                    .expect("at least one lane");
                load[min] += d;
            }
            load.into_iter().max().unwrap_or(0)
        }
        // Deterministic pseudo-random durations (xorshift), many ties.
        let mut x = 0x9e3779b97f4a7c15u64;
        let durations: Vec<u64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 17
            })
            .collect();
        for lanes in [2usize, 3, 7, 8, 64] {
            assert_eq!(
                lane_schedule(durations.iter().copied(), lanes),
                reference(&durations, lanes),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn event_clock_with_zero_releases_is_a_wave() {
        let durations = [7u64, 3, 9, 4, 1, 12, 5, 0, 9];
        for lanes in 1..6 {
            let mut clock = EventClock::new(lanes);
            for &d in &durations {
                clock.schedule(0, d);
            }
            assert_eq!(
                clock.makespan(),
                lane_schedule(durations.iter().copied(), lanes),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn event_clock_honours_release_times() {
        let mut clock = EventClock::new(2);
        // Two tasks ready at t=0 fill both lanes until 10 and 4.
        assert_eq!(clock.schedule(0, 10), 10);
        assert_eq!(clock.schedule(0, 4), 4);
        // Released at 6 on the lane free at 4: starts at the release.
        assert_eq!(clock.schedule(6, 5), 11);
        // Released at 2 on the lane free at 10: waits for the lane.
        assert_eq!(clock.schedule(2, 1), 11);
        assert_eq!(clock.makespan(), 11);
    }

    #[test]
    fn event_clock_single_lane_chains_in_schedule_order() {
        let mut clock = EventClock::new(1);
        assert_eq!(clock.schedule(0, 5), 5);
        assert_eq!(clock.schedule(0, 5), 10);
        // Idle gap: the lane waits for the release, losing the idle time.
        assert_eq!(clock.schedule(20, 5), 25);
        assert_eq!(clock.makespan(), 25);
    }

    #[test]
    fn event_clock_ties_go_to_the_lowest_lane() {
        // Four equal-length tasks over four lanes, all released at zero:
        // round-robin assignment means a fifth task starts exactly when
        // lane 0 frees, regardless of makespan-equal alternatives.
        let mut clock = EventClock::new(4);
        for _ in 0..4 {
            assert_eq!(clock.schedule(0, 10), 10);
        }
        assert_eq!(clock.schedule(0, 10), 20);
        assert_eq!(clock.lanes(), 4);
    }

    #[test]
    fn event_clock_reports_idle_lanes() {
        let mut clock = EventClock::new(3);
        assert_eq!(clock.idle_lanes(0), 3);
        clock.schedule(0, 10);
        clock.schedule(0, 4);
        assert_eq!(clock.idle_lanes(0), 1);
        assert_eq!(clock.idle_lanes(4), 2);
        assert_eq!(clock.idle_lanes(10), 3);
    }

    #[test]
    fn event_clock_clamps_lanes() {
        let mut clock = EventClock::new(0);
        assert_eq!(clock.lanes(), 1);
        assert_eq!(clock.schedule(0, 3), 3);
        assert_eq!(clock.schedule(0, 3), 6);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::from(8).get(), 8);
        assert_eq!(Parallelism::new(3).to_string(), "3");
    }
}
