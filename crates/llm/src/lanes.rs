//! Virtual request lanes: the concurrency model of the simulated clock.
//!
//! The paper's latency numbers (§5: ~20 s and ~110 batched prompts per
//! query) assume every prompt decodes sequentially. A production deployment
//! would instead hold `K` concurrent request lanes open against the
//! provider; independent prompts then cost `max` over lanes rather than
//! `sum` over members. [`Parallelism`] is that knob, and [`lane_schedule`]
//! is the accounting rule shared by the client's per-batch clock and the
//! session scheduler's per-wave clock.
//!
//! `Parallelism::new(1)` reproduces the original sequential accounting
//! bit-for-bit: with one lane, `lane_schedule` degenerates to a plain sum.
//!
//! The knob applies *per scheduling level*: a batch's members decode
//! across `K` provider streams, a wave's independent batches occupy `K`
//! request lanes, and the harness may additionally run `K` concurrent
//! query streams. Because the levels compose, an end-to-end speedup can
//! exceed `K` (it is bounded by the product of the levels involved) — the
//! model is "each scheduling point sees `K`-way concurrency", not a
//! single global pool of `K` connections.

use std::fmt;

/// Number of concurrent request lanes a deployment offers.
///
/// The same value drives two things:
///
/// * the **virtual clock** — a batch of `n` independent prompts costs
///   `overhead + max(lane sums)` across `K` simulated lanes instead of
///   `overhead + sum`, and a wave of independent work units is packed onto
///   `K` lanes the same way;
/// * the **real worker pool** — the session scheduler runs at most `K`
///   retrieval units on OS threads at once.
///
/// Values are clamped to at least 1; `Parallelism::default()` is 1, the
/// paper-faithful sequential configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Creates a knob with `lanes` request lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        Parallelism(lanes.max(1))
    }

    /// The number of lanes.
    pub fn get(self) -> usize {
        self.0
    }

    /// True for the single-lane (paper-faithful, sequential) setting.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism(1)
    }
}

impl From<usize> for Parallelism {
    fn from(lanes: usize) -> Self {
        Parallelism::new(lanes)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Greedy multi-lane makespan.
///
/// Durations are assigned in submission order, each to the currently
/// least-loaded lane (first lane wins ties, so equal durations round-robin
/// deterministically); the result is the maximum lane total. With one lane
/// this is exactly the sum of the durations — the pre-scheduler accounting.
pub fn lane_schedule<I>(durations: I, lanes: usize) -> u64
where
    I: IntoIterator<Item = u64>,
{
    let lanes = lanes.max(1);
    if lanes == 1 {
        return durations.into_iter().sum();
    }
    let mut load = vec![0u64; lanes];
    for d in durations {
        let min = (0..lanes)
            .min_by_key(|&i| load[i])
            .expect("at least one lane");
        load[min] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_lane_is_a_sum() {
        assert_eq!(lane_schedule([3, 5, 7], 1), 15);
        assert_eq!(lane_schedule([], 1), 0);
    }

    #[test]
    fn equal_durations_round_robin() {
        // 8 × 10ms over 4 lanes: two per lane.
        assert_eq!(lane_schedule(std::iter::repeat_n(10, 8), 4), 20);
    }

    #[test]
    fn more_lanes_than_work_costs_the_longest_item() {
        assert_eq!(lane_schedule([5, 9, 2], 16), 9);
    }

    #[test]
    fn greedy_balances_uneven_durations() {
        // 10 goes to lane 0, 1s pack onto lane 1: makespan 10, not 13.
        assert_eq!(lane_schedule([10, 1, 1, 1], 2), 10);
    }

    #[test]
    fn makespan_never_beats_the_critical_path_or_the_mean() {
        let durations = [7u64, 3, 9, 4, 1, 12, 5];
        let total: u64 = durations.iter().sum();
        for lanes in 1..6 {
            let m = lane_schedule(durations, lanes);
            assert!(m >= total.div_ceil(lanes as u64));
            assert!(m >= 12); // longest single duration
            assert!(m <= total);
        }
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::from(8).get(), 8);
        assert_eq!(Parallelism::new(3).to_string(), "3");
    }
}
