//! Virtual request lanes: the concurrency model of the simulated clock.
//!
//! The paper's latency numbers (§5: ~20 s and ~110 batched prompts per
//! query) assume every prompt decodes sequentially. A production deployment
//! would instead hold `K` concurrent request lanes open against the
//! provider; independent prompts then cost `max` over lanes rather than
//! `sum` over members. [`Parallelism`] is that knob, and [`lane_schedule`]
//! is the accounting rule shared by the client's per-batch clock and the
//! session scheduler's per-wave clock.
//!
//! `Parallelism::new(1)` reproduces the original sequential accounting
//! bit-for-bit: with one lane, `lane_schedule` degenerates to a plain sum.
//!
//! The knob applies *per scheduling level*: a batch's members decode
//! across `K` provider streams, a wave's independent batches occupy `K`
//! request lanes, and the harness may additionally run `K` concurrent
//! query streams. Because the levels compose, an end-to-end speedup can
//! exceed `K` (it is bounded by the product of the levels involved) — the
//! model is "each scheduling point sees `K`-way concurrency", not a
//! single global pool of `K` connections.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Number of concurrent request lanes a deployment offers.
///
/// The same value drives two things:
///
/// * the **virtual clock** — a batch of `n` independent prompts costs
///   `overhead + max(lane sums)` across `K` simulated lanes instead of
///   `overhead + sum`, and a wave of independent work units is packed onto
///   `K` lanes the same way;
/// * the **real worker pool** — the session scheduler runs at most `K`
///   retrieval units on OS threads at once.
///
/// Values are clamped to at least 1; `Parallelism::default()` is 1, the
/// paper-faithful sequential configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Creates a knob with `lanes` request lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        Parallelism(lanes.max(1))
    }

    /// The number of lanes.
    pub fn get(self) -> usize {
        self.0
    }

    /// True for the single-lane (paper-faithful, sequential) setting.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism(1)
    }
}

impl From<usize> for Parallelism {
    fn from(lanes: usize) -> Self {
        Parallelism::new(lanes)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lane count at which [`lane_schedule`] switches from the per-item
/// min-scan to the binary heap. Below it a linear scan over the lane
/// loads stays within a couple of cache lines and beats the heap's
/// pointer shuffling; at and above it the heap's `O(log K)` lookup wins
/// (measured crossover ≈ 32 on 10k-item waves — see the `lanes` criterion
/// bench).
const HEAP_LANES_MIN: usize = 32;

/// Greedy multi-lane makespan.
///
/// Durations are assigned in submission order, each to the currently
/// least-loaded lane (lowest lane index wins ties, so equal durations
/// round-robin deterministically); the result is the maximum lane total.
/// With one lane this is exactly the sum of the durations — the
/// pre-scheduler accounting.
///
/// Semantically this is [`EventClock`] with every release time at zero: a
/// wave is the degenerate pipeline in which all work is ready at once.
/// Wide waves delegate to exactly that (heap-backed, `O(n log K)`);
/// narrow ones keep the `O(n·K)` min-scan, which is faster below 32
/// lanes (the measured crossover, `HEAP_LANES_MIN`). Both paths make the
/// same assignments with the same tie-breaks — bit-identical makespans.
///
/// The per-lane load vector and the heap are thread-local scratch buffers
/// reused across calls, so the per-wave accounting the client and session
/// do on every batch allocates nothing in steady state. Callers holding a
/// long-lived [`LaneScratch`] can skip the thread-local lookup too.
pub fn lane_schedule<I>(durations: I, lanes: usize) -> u64
where
    I: IntoIterator<Item = u64>,
{
    thread_local! {
        static SCRATCH: RefCell<LaneScratch> = RefCell::new(LaneScratch::new());
    }
    SCRATCH.with(|s| s.borrow_mut().lane_schedule(durations, lanes))
}

/// Reusable scratch buffers for [`lane_schedule`]: the per-lane load
/// vector of the min-scan path and the `(free_at, lane)` heap of the wide
/// path, both retained across calls so repeated wave accounting allocates
/// nothing in steady state. (The free function reuses a thread-local
/// instance; a long-lived explicit scratch skips even that lookup.)
///
/// Both paths make exactly [`lane_schedule`]'s assignments with its
/// tie-breaks — bit-identical makespans.
#[derive(Debug, Default)]
pub struct LaneScratch {
    load: Vec<u64>,
    free: BinaryHeap<Reverse<(u64, usize)>>,
}

impl LaneScratch {
    /// An empty scratch (buffers grow to the first call's lane count and
    /// stay allocated).
    pub fn new() -> Self {
        LaneScratch::default()
    }

    /// [`lane_schedule`] over this scratch's buffers.
    pub fn lane_schedule<I>(&mut self, durations: I, lanes: usize) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let lanes = lanes.max(1);
        if lanes == 1 {
            return durations.into_iter().sum();
        }
        if lanes >= HEAP_LANES_MIN {
            self.free.clear();
            for i in 0..lanes {
                self.free.push(Reverse((0, i)));
            }
            let mut makespan = 0u64;
            for d in durations {
                let Reverse((free_at, lane)) = self.free.pop().expect("at least one lane");
                let done = free_at + d;
                self.free.push(Reverse((done, lane)));
                makespan = makespan.max(done);
            }
            return makespan;
        }
        self.load.clear();
        self.load.resize(lanes, 0);
        for d in durations {
            let min = (0..lanes)
                .min_by_key(|&i| self.load[i])
                .expect("at least one lane");
            self.load[min] += d;
        }
        self.load.iter().copied().max().unwrap_or(0)
    }
}

/// Event-driven virtual clock: `K` request lanes serving tasks that become
/// ready at arbitrary *release times*.
///
/// [`lane_schedule`] models a **wave**: all work is ready at once, so the
/// makespan is a pure packing problem. A pipelined execution instead
/// releases work as upstream answers land — a filter micro-batch cannot
/// start before the list page that produced its keys has decoded. The
/// event clock generalises the accounting: each task is released at some
/// virtual instant, claims the earliest-free lane (lowest lane index wins
/// ties), starts at `max(release, lane free time)`, and completes after
/// its duration. [`EventClock::schedule`] returns that per-task completion
/// time, which is what drives the streaming session driver's dataflow —
/// downstream accumulators see keys at the completion times the clock
/// hands back.
///
/// Tasks must be scheduled in a deterministic order (the session driver
/// processes completion events in `(time, sequence)` order), which makes
/// the whole simulation a pure function of the work — never of OS thread
/// timing. With one lane the clock degenerates to a running sum exactly
/// like the wave accounting.
#[derive(Debug, Clone)]
pub struct EventClock {
    /// Min-heap of `(free_at, lane index)`: the earliest-free lane is
    /// always at the top, with ties resolved towards the lowest index.
    free: BinaryHeap<Reverse<(u64, usize)>>,
    lanes: usize,
    makespan: u64,
}

impl EventClock {
    /// A clock with `lanes` request lanes (clamped to ≥ 1), all free at
    /// virtual time zero.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        EventClock {
            free: (0..lanes).map(|i| Reverse((0, i))).collect(),
            lanes,
            makespan: 0,
        }
    }

    /// The lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Schedules a task released at `release` with `duration` on the
    /// earliest-free lane and returns its completion time.
    ///
    /// The task starts at `max(release, lane free time)`: a lane that
    /// idles until the release still counts as free (idle time is lost,
    /// not banked). Ties between equally-free lanes go to the lowest lane
    /// index, matching [`lane_schedule`]'s round-robin determinism.
    pub fn schedule(&mut self, release: u64, duration: u64) -> u64 {
        let Reverse((free_at, lane)) = self.free.pop().expect("at least one lane");
        let done = free_at.max(release) + duration;
        self.free.push(Reverse((done, lane)));
        self.makespan = self.makespan.max(done);
        done
    }

    /// The latest completion time scheduled so far (zero when no task has
    /// been scheduled).
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of lanes idle at virtual time `t` (free at or before it).
    ///
    /// The streaming driver uses this as its micro-batch flush trigger: a
    /// partial batch held back while lanes sit idle is pure latency, so
    /// once every event at `t` has resolved, idle capacity releases the
    /// accumulators early.
    pub fn idle_lanes(&self, t: u64) -> usize {
        self.free
            .iter()
            .filter(|Reverse((free_at, _))| *free_at <= t)
            .count()
    }

    /// Resets the clock to `lanes` fresh lanes (clamped to ≥ 1), all free
    /// at time zero, reusing the heap's allocation. After a reset the
    /// clock is indistinguishable from `EventClock::new(lanes)`.
    pub fn reset(&mut self, lanes: usize) {
        let lanes = lanes.max(1);
        self.free.clear();
        for i in 0..lanes {
            self.free.push(Reverse((0, i)));
        }
        self.lanes = lanes;
        self.makespan = 0;
    }
}

/// Fairness rule a shared [`LanePool`] arbitrates concurrent sessions by
/// when several have work ready at the same virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FairShare {
    /// Deficit-weighted: the session with the least lane-busy virtual
    /// time served so far goes first (ties to the lowest session index).
    /// Sessions with short queries never starve behind heavy ones.
    #[default]
    DeficitMs,
    /// Plain round-robin over session indices: a rotating cursor picks
    /// the next session with ready work, regardless of how much service
    /// each has consumed.
    RoundRobin,
}

impl fmt::Display for FairShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairShare::DeficitMs => write!(f, "deficit-ms"),
            FairShare::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// A global pool of request lanes shared by many concurrent sessions —
/// [`EventClock`] lifted from "one query's `K` lanes" to "the deployment's
/// lanes, drawn from by every in-flight query".
///
/// The pool keeps the clock's determinism (earliest-free lane, ties to the
/// lowest index; tasks must be scheduled in a deterministic order) and
/// adds per-session service accounting: every scheduled task's duration is
/// tallied against its session, which is what deficit-weighted fairness
/// ([`FairShare::DeficitMs`]) and the utilisation report read.
#[derive(Debug, Clone)]
pub struct LanePool {
    clock: EventClock,
    /// Lane-busy virtual milliseconds served per session.
    served: Vec<u64>,
    /// Total lane-busy virtual milliseconds across all sessions.
    busy_ms: u64,
}

impl LanePool {
    /// A pool of `lanes` request lanes (clamped to ≥ 1) serving `sessions`
    /// sessions, all lanes free at virtual time zero.
    pub fn new(lanes: usize, sessions: usize) -> Self {
        LanePool {
            clock: EventClock::new(lanes),
            served: vec![0; sessions.max(1)],
            busy_ms: 0,
        }
    }

    /// The lane count.
    pub fn lanes(&self) -> usize {
        self.clock.lanes()
    }

    /// The session count.
    pub fn sessions(&self) -> usize {
        self.served.len()
    }

    /// Schedules a task of `session` released at `release` with `duration`
    /// on the earliest-free lane and returns its completion time (exactly
    /// [`EventClock::schedule`]), tallying the duration as service to the
    /// session.
    pub fn schedule(&mut self, session: usize, release: u64, duration: u64) -> u64 {
        if let Some(s) = self.served.get_mut(session) {
            *s += duration;
        }
        self.busy_ms += duration;
        self.clock.schedule(release, duration)
    }

    /// Lane-busy virtual milliseconds served to `session` so far — the
    /// deficit counter [`FairShare::DeficitMs`] arbitrates on.
    pub fn served_ms(&self, session: usize) -> u64 {
        self.served.get(session).copied().unwrap_or(0)
    }

    /// The latest completion time scheduled so far.
    pub fn makespan(&self) -> u64 {
        self.clock.makespan()
    }

    /// Fraction of the `lanes × makespan` budget that did useful work
    /// (0.0 on an empty pool).
    pub fn utilisation(&self) -> f64 {
        let budget = (self.lanes() as u64 * self.makespan()) as f64;
        if budget == 0.0 {
            0.0
        } else {
            self.busy_ms as f64 / budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_lane_is_a_sum() {
        assert_eq!(lane_schedule([3, 5, 7], 1), 15);
        assert_eq!(lane_schedule([], 1), 0);
    }

    #[test]
    fn equal_durations_round_robin() {
        // 8 × 10ms over 4 lanes: two per lane.
        assert_eq!(lane_schedule(std::iter::repeat_n(10, 8), 4), 20);
    }

    #[test]
    fn more_lanes_than_work_costs_the_longest_item() {
        assert_eq!(lane_schedule([5, 9, 2], 16), 9);
    }

    #[test]
    fn greedy_balances_uneven_durations() {
        // 10 goes to lane 0, 1s pack onto lane 1: makespan 10, not 13.
        assert_eq!(lane_schedule([10, 1, 1, 1], 2), 10);
    }

    #[test]
    fn makespan_never_beats_the_critical_path_or_the_mean() {
        let durations = [7u64, 3, 9, 4, 1, 12, 5];
        let total: u64 = durations.iter().sum();
        for lanes in 1..6 {
            let m = lane_schedule(durations, lanes);
            assert!(m >= total.div_ceil(lanes as u64));
            assert!(m >= 12); // longest single duration
            assert!(m <= total);
        }
    }

    #[test]
    fn heap_schedule_matches_reference_min_scan() {
        // The pre-heap formulation, kept as the reference: O(lanes)
        // min-scan per item, first minimal lane wins.
        fn reference(durations: &[u64], lanes: usize) -> u64 {
            let mut load = vec![0u64; lanes];
            for &d in durations {
                let min = (0..lanes)
                    .min_by_key(|&i| load[i])
                    .expect("at least one lane");
                load[min] += d;
            }
            load.into_iter().max().unwrap_or(0)
        }
        // Deterministic pseudo-random durations (xorshift), many ties.
        let mut x = 0x9e3779b97f4a7c15u64;
        let durations: Vec<u64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 17
            })
            .collect();
        for lanes in [2usize, 3, 7, 8, 64] {
            assert_eq!(
                lane_schedule(durations.iter().copied(), lanes),
                reference(&durations, lanes),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn event_clock_with_zero_releases_is_a_wave() {
        let durations = [7u64, 3, 9, 4, 1, 12, 5, 0, 9];
        for lanes in 1..6 {
            let mut clock = EventClock::new(lanes);
            for &d in &durations {
                clock.schedule(0, d);
            }
            assert_eq!(
                clock.makespan(),
                lane_schedule(durations.iter().copied(), lanes),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn event_clock_honours_release_times() {
        let mut clock = EventClock::new(2);
        // Two tasks ready at t=0 fill both lanes until 10 and 4.
        assert_eq!(clock.schedule(0, 10), 10);
        assert_eq!(clock.schedule(0, 4), 4);
        // Released at 6 on the lane free at 4: starts at the release.
        assert_eq!(clock.schedule(6, 5), 11);
        // Released at 2 on the lane free at 10: waits for the lane.
        assert_eq!(clock.schedule(2, 1), 11);
        assert_eq!(clock.makespan(), 11);
    }

    #[test]
    fn event_clock_single_lane_chains_in_schedule_order() {
        let mut clock = EventClock::new(1);
        assert_eq!(clock.schedule(0, 5), 5);
        assert_eq!(clock.schedule(0, 5), 10);
        // Idle gap: the lane waits for the release, losing the idle time.
        assert_eq!(clock.schedule(20, 5), 25);
        assert_eq!(clock.makespan(), 25);
    }

    #[test]
    fn event_clock_ties_go_to_the_lowest_lane() {
        // Four equal-length tasks over four lanes, all released at zero:
        // round-robin assignment means a fifth task starts exactly when
        // lane 0 frees, regardless of makespan-equal alternatives.
        let mut clock = EventClock::new(4);
        for _ in 0..4 {
            assert_eq!(clock.schedule(0, 10), 10);
        }
        assert_eq!(clock.schedule(0, 10), 20);
        assert_eq!(clock.lanes(), 4);
    }

    #[test]
    fn event_clock_reports_idle_lanes() {
        let mut clock = EventClock::new(3);
        assert_eq!(clock.idle_lanes(0), 3);
        clock.schedule(0, 10);
        clock.schedule(0, 4);
        assert_eq!(clock.idle_lanes(0), 1);
        assert_eq!(clock.idle_lanes(4), 2);
        assert_eq!(clock.idle_lanes(10), 3);
    }

    #[test]
    fn event_clock_clamps_lanes() {
        let mut clock = EventClock::new(0);
        assert_eq!(clock.lanes(), 1);
        assert_eq!(clock.schedule(0, 3), 3);
        assert_eq!(clock.schedule(0, 3), 6);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::from(8).get(), 8);
        assert_eq!(Parallelism::new(3).to_string(), "3");
    }

    #[test]
    fn scratch_matches_the_free_function_across_reuse() {
        // One scratch reused across differing lane counts (including the
        // heap path) must stay bit-identical with fresh-state calls.
        let mut x = 0xdeadbeefcafef00du64;
        let durations: Vec<u64> = (0..500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 23
            })
            .collect();
        let mut scratch = LaneScratch::new();
        for &lanes in &[1usize, 2, 8, 64, 3, 32, 1, 100] {
            assert_eq!(
                scratch.lane_schedule(durations.iter().copied(), lanes),
                lane_schedule(durations.iter().copied(), lanes),
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn event_clock_reset_is_a_fresh_clock() {
        let mut clock = EventClock::new(2);
        clock.schedule(0, 10);
        clock.schedule(0, 7);
        clock.reset(3);
        assert_eq!(clock.lanes(), 3);
        assert_eq!(clock.makespan(), 0);
        assert_eq!(clock.idle_lanes(0), 3);
        // Same schedule as a new clock, including tie-breaks.
        let mut fresh = EventClock::new(3);
        for &(r, d) in &[(0u64, 5u64), (0, 5), (0, 5), (2, 4), (0, 1)] {
            assert_eq!(clock.schedule(r, d), fresh.schedule(r, d));
        }
        clock.reset(0);
        assert_eq!(clock.lanes(), 1);
    }

    #[test]
    fn lane_pool_reproduces_the_event_clock() {
        // A one-session pool is exactly an EventClock with accounting.
        let mut pool = LanePool::new(4, 1);
        let mut clock = EventClock::new(4);
        let tasks = [(0u64, 10u64), (0, 4), (6, 5), (2, 1), (11, 3)];
        for &(r, d) in &tasks {
            assert_eq!(pool.schedule(0, r, d), clock.schedule(r, d));
        }
        assert_eq!(pool.makespan(), clock.makespan());
        assert_eq!(pool.served_ms(0), tasks.iter().map(|&(_, d)| d).sum());
        assert_eq!(pool.lanes(), 4);
        assert_eq!(pool.sessions(), 1);
    }

    #[test]
    fn lane_pool_tallies_service_per_session() {
        let mut pool = LanePool::new(2, 3);
        pool.schedule(0, 0, 10);
        pool.schedule(1, 0, 4);
        pool.schedule(1, 0, 2);
        pool.schedule(2, 0, 1);
        assert_eq!(pool.served_ms(0), 10);
        assert_eq!(pool.served_ms(1), 6);
        assert_eq!(pool.served_ms(2), 1);
        assert_eq!(pool.served_ms(99), 0);
        // 17 busy ms over 2 lanes × makespan.
        let expect = 17.0 / (2.0 * pool.makespan() as f64);
        assert!((pool.utilisation() - expect).abs() < 1e-12);
        assert_eq!(LanePool::new(8, 0).sessions(), 1);
        assert_eq!(LanePool::new(8, 2).utilisation(), 0.0);
    }

    #[test]
    fn fair_share_renders_its_label() {
        assert_eq!(FairShare::default(), FairShare::DeficitMs);
        assert_eq!(FairShare::DeficitMs.to_string(), "deficit-ms");
        assert_eq!(FairShare::RoundRobin.to_string(), "round-robin");
    }
}
