//! Noise channels of the simulated LLM.
//!
//! Each channel reproduces a failure mode the paper reports:
//!
//! * **format noise** — "numerical data can be retrieved in different
//!   formats … we normalize every string expressing a numerical value
//!   (say, 1k) into a number" (§4): numbers render as `2,800,000`,
//!   `2.8 million`, `2800k`, …; dates as ISO, US or long form.
//! * **value perturbation** — hallucinated / imprecise stored facts; the
//!   5% relative-error acceptance rule of the evaluation (§5) interacts
//!   with the error scale chosen per model profile.
//! * **alias drift** — entity references surface in different forms ("IT"
//!   vs "ITA"), the reported cause of Galois's join failures (§5).
//! * **hallucinated entities** — fake but plausible names injected into
//!   list answers.

use crate::knowledge::FactValue;
use rand::rngs::StdRng;
use rand::Rng;

/// Stable FNV-1a hash used to derive per-(model, entity, attribute) seeds.
/// Written out explicitly so determinism survives toolchain upgrades.
pub fn fnv1a64(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator byte so ("ab","c") != ("a","bc").
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes a numeric seed into a part list. The FNV output is passed through
/// a splitmix64 finalizer: FNV alone has poor avalanche on structured keys
/// ("City1", "City2", …), which visibly biases Bernoulli draws.
pub fn seeded(seed: u64, parts: &[&str]) -> u64 {
    let s = seed.to_le_bytes();
    let hex: String = s.iter().map(|b| format!("{b:02x}")).collect();
    let mut all: Vec<&str> = vec![&hex];
    all.extend_from_slice(parts);
    splitmix64(fnv1a64(&all))
}

/// splitmix64 finalizer (public domain, Vigna).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a numeric value is rendered in answer text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberStyle {
    /// `2800000`
    Plain,
    /// `2,800,000`
    Thousands,
    /// `2.8 million`
    SpelledMillions,
    /// `2800k`
    KSuffix,
    /// `about 2,800,000`
    Approximate,
}

/// Renders `v` in the given style. Integral values keep integer rendering
/// where the style allows it.
pub fn render_number(v: f64, style: NumberStyle) -> String {
    match style {
        NumberStyle::Plain => plain(v),
        NumberStyle::Thousands => thousands(v),
        NumberStyle::SpelledMillions => {
            if v.abs() >= 1_000_000.0 {
                let m = v / 1_000_000.0;
                if (m * 10.0).fract().abs() < 1e-9 {
                    format!("{m:.1} million")
                } else {
                    format!("{m:.2} million")
                }
            } else {
                plain(v)
            }
        }
        NumberStyle::KSuffix => {
            if v.abs() >= 10_000.0 && (v / 1000.0).fract() == 0.0 {
                format!("{}k", plain(v / 1000.0))
            } else {
                plain(v)
            }
        }
        NumberStyle::Approximate => format!("about {}", thousands(v)),
    }
}

fn plain(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn thousands(v: f64) -> String {
    let base = plain(v);
    let (int_part, frac_part) = match base.split_once('.') {
        Some((i, f)) => (i.to_string(), Some(f.to_string())),
        None => (base, None),
    };
    let negative = int_part.starts_with('-');
    let digits: Vec<char> = int_part.trim_start_matches('-').chars().collect();
    let mut grouped = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(*c);
    }
    let mut out = String::new();
    if negative {
        out.push('-');
    }
    out.push_str(&grouped);
    if let Some(f) = frac_part {
        out.push('.');
        out.push_str(&f);
    }
    out
}

/// How a date is rendered in answer text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateStyle {
    /// `1961-05-08`
    Iso,
    /// `05/08/1961`
    Us,
    /// `May 8, 1961`
    Long,
}

const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Renders a date in the given style.
pub fn render_date(year: i32, month: u8, day: u8, style: DateStyle) -> String {
    match style {
        DateStyle::Iso => format!("{year:04}-{month:02}-{day:02}"),
        DateStyle::Us => format!("{month:02}/{day:02}/{year:04}"),
        DateStyle::Long => format!(
            "{} {day}, {year}",
            MONTHS[(month.clamp(1, 12) - 1) as usize]
        ),
    }
}

/// Picks a number style with `noise` probability of a non-plain format.
pub fn pick_number_style(rng: &mut StdRng, noise: f64) -> NumberStyle {
    if rng.gen::<f64>() >= noise {
        return NumberStyle::Plain;
    }
    match rng.gen_range(0..4) {
        0 => NumberStyle::Thousands,
        1 => NumberStyle::SpelledMillions,
        2 => NumberStyle::KSuffix,
        _ => NumberStyle::Approximate,
    }
}

/// Picks a date style with `noise` probability of a non-ISO format.
pub fn pick_date_style(rng: &mut StdRng, noise: f64) -> DateStyle {
    if rng.gen::<f64>() >= noise {
        DateStyle::Iso
    } else if rng.gen::<bool>() {
        DateStyle::Us
    } else {
        DateStyle::Long
    }
}

/// Multiplicatively perturbs a numeric value by up to `rel_err` (uniform).
/// Integral inputs stay integral, matching how models misremember rounded
/// figures rather than produce fractional populations.
pub fn perturb_number(v: f64, rel_err: f64, rng: &mut StdRng) -> f64 {
    if rel_err <= 0.0 || v == 0.0 {
        return v;
    }
    let factor = 1.0 + rng.gen_range(-rel_err..rel_err);
    let out = v * factor;
    if v.fract() == 0.0 {
        out.round()
    } else {
        out
    }
}

/// Shifts a date by up to `max_days` days in either direction via its
/// year/month/day parts (approximate calendar arithmetic is fine: the
/// result only needs to be a *different valid-looking* date).
pub fn perturb_date(
    year: i32,
    month: u8,
    day: u8,
    max_days: i64,
    rng: &mut StdRng,
) -> (i32, u8, u8) {
    if max_days == 0 {
        return (year, month, day);
    }
    let shift = rng.gen_range(-max_days..=max_days);
    let mut d = i64::from(day) + shift;
    let mut m = i64::from(month);
    let mut y = i64::from(year);
    while d < 1 {
        m -= 1;
        if m < 1 {
            m = 12;
            y -= 1;
        }
        d += 28;
    }
    while d > 28 {
        d -= 28;
        m += 1;
        if m > 12 {
            m = 1;
            y += 1;
        }
    }
    (y as i32, m as u8, d as u8)
}

/// Generates a plausible-but-fake entity name (hallucination channel).
pub fn fake_name(rng: &mut StdRng) -> String {
    const STARTS: [&str; 10] = [
        "Bel", "Mar", "Tor", "Kal", "Ver", "San", "Nor", "Lan", "Gro", "Por",
    ];
    const MIDS: [&str; 8] = ["a", "o", "e", "ar", "en", "il", "ov", "um"];
    const ENDS: [&str; 10] = [
        "ville", "burg", "ton", "grad", "mouth", "ford", "stad", "field", "port", "ia",
    ];
    format!(
        "{}{}{}",
        STARTS[rng.gen_range(0..STARTS.len())],
        MIDS[rng.gen_range(0..MIDS.len())],
        ENDS[rng.gen_range(0..ENDS.len())]
    )
}

/// Renders a fact value with the given noise dials.
pub fn render_fact(
    value: &FactValue,
    rng: &mut StdRng,
    format_noise: f64,
    resolve_entity: impl Fn(&FactValue) -> Option<String>,
) -> String {
    match value {
        FactValue::Text(s) => s.clone(),
        FactValue::Number(n) => render_number(*n, pick_number_style(rng, format_noise)),
        FactValue::Date { year, month, day } => {
            render_date(*year, *month, *day, pick_date_style(rng, format_noise))
        }
        FactValue::Entity(_) => resolve_entity(value).unwrap_or_else(|| "Unknown".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fnv_is_stable_and_distinguishes_boundaries() {
        assert_eq!(fnv1a64(&["abc"]), fnv1a64(&["abc"]));
        assert_ne!(fnv1a64(&["ab", "c"]), fnv1a64(&["a", "bc"]));
        assert_ne!(seeded(1, &["x"]), seeded(2, &["x"]));
    }

    #[test]
    fn number_styles() {
        assert_eq!(render_number(2_800_000.0, NumberStyle::Plain), "2800000");
        assert_eq!(
            render_number(2_800_000.0, NumberStyle::Thousands),
            "2,800,000"
        );
        assert_eq!(
            render_number(2_800_000.0, NumberStyle::SpelledMillions),
            "2.8 million"
        );
        assert_eq!(render_number(500_000.0, NumberStyle::KSuffix), "500k");
        assert_eq!(
            render_number(1_234.0, NumberStyle::Approximate),
            "about 1,234"
        );
        assert_eq!(render_number(2.5, NumberStyle::Plain), "2.50");
        assert_eq!(
            render_number(-1234567.0, NumberStyle::Thousands),
            "-1,234,567"
        );
    }

    #[test]
    fn small_numbers_fall_back_to_plain() {
        assert_eq!(render_number(42.0, NumberStyle::SpelledMillions), "42");
        assert_eq!(render_number(42.0, NumberStyle::KSuffix), "42");
    }

    #[test]
    fn date_styles() {
        assert_eq!(render_date(1961, 5, 8, DateStyle::Iso), "1961-05-08");
        assert_eq!(render_date(1961, 5, 8, DateStyle::Us), "05/08/1961");
        assert_eq!(render_date(1961, 5, 8, DateStyle::Long), "May 8, 1961");
    }

    #[test]
    fn perturbation_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = perturb_number(1000.0, 0.05, &mut rng);
            assert!((v - 1000.0).abs() <= 50.0 + 1.0, "{v}");
            assert_eq!(v.fract(), 0.0);
        }
        assert_eq!(perturb_number(1000.0, 0.0, &mut rng), 1000.0);
    }

    #[test]
    fn perturbed_dates_are_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let (y, m, d) = perturb_date(1961, 5, 8, 400, &mut rng);
            assert!((1..=12).contains(&m));
            assert!((1..=28).contains(&d));
            assert!((1959..=1963).contains(&y));
        }
    }

    #[test]
    fn fake_names_are_nonempty_and_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = fake_name(&mut rng);
        let b = fake_name(&mut rng);
        assert!(!a.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn zero_noise_keeps_plain_styles() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(pick_number_style(&mut rng, 0.0), NumberStyle::Plain);
            assert_eq!(pick_date_style(&mut rng, 0.0), DateStyle::Iso);
        }
    }
}
