//! Question answering over the knowledge store — the behaviour behind the
//! paper's QA baselines `T_M` (plain NL question) and `T_C_M`
//! (chain-of-thought).
//!
//! The same stable beliefs as the operator path are used (an LLM has one
//! set of parameters), but the *work* differs: the model enumerates,
//! filters, joins and aggregates internally in a single shot. That is
//! precisely where LLMs are weak (paper §3: "they fail with numerical
//! comparisons"; §5: aggregates reach only 20% as NL questions), so this
//! path adds arithmetic error and row dropout on top of the shared
//! perception noise.

use crate::knowledge::FactValue;
use crate::nlq::{AggKind, QueryIntent};
use crate::noise;
use crate::simllm::{fact_number, SimLlm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answers a parsed NL question as free text.
pub fn answer_question(model: &SimLlm, q: &QueryIntent, cot: bool, prompt: &str) -> String {
    let ty = model.relation_type(&q.relation);
    let entities = model.knowledge().entities_of_type(&ty);
    if entities.is_empty() {
        return "Unknown".to_string();
    }
    let profile = model.profile().clone();
    let mut rng = StdRng::seed_from_u64(noise::seeded(profile.seed, &["qa", prompt]));

    // Enumerate + filter with the model's stable beliefs; QA answers also
    // drop rows (models tire of long enumerations).
    let mut survivors = Vec::new();
    for e in entities {
        if !model.recalls(e) {
            continue;
        }
        if let Some(cond) = &q.condition {
            if !model.condition_holds(e, cond).unwrap_or(false) {
                continue;
            }
        }
        if rng.gen::<f64>() < profile.qa_row_dropout {
            continue;
        }
        survivors.push(e);
    }

    if let Some(agg) = &q.aggregate {
        return answer_aggregate(model, q, agg, &survivors, cot, &mut rng);
    }

    if survivors.is_empty() {
        return "None".to_string();
    }

    // Plain listing, optionally with a join hop.
    let mut lines = Vec::new();
    let mut simple_keys = Vec::new();
    for e in &survivors {
        let mut cells = Vec::new();
        for attr in &q.select {
            let rendered = match model.perceived_fact(e, attr) {
                Some(v) => model.render_value(&v, &ty, attr, &mut rng),
                None => {
                    if attr.eq_ignore_ascii_case("name")
                        || model.knowledge().resolve(&ty, &e.name).is_some()
                            && model.knowledge().fact(e.id, attr).is_none()
                            && is_key_like(attr)
                    {
                        e.name.clone()
                    } else {
                        "unknown".to_string()
                    }
                }
            };
            cells.push(rendered);
        }
        if let Some(join) = &q.join {
            // One-shot multi-hop reasoning fails for most rows — the model
            // silently skips entities it cannot complete (the paper's T_M
            // joins reach 8%, T_C_M 0%); CoT makes it slightly worse.
            let join_dropout = (profile.qa_join_dropout
                * if cot {
                    profile.cot_arithmetic_factor
                } else {
                    1.0
                })
            .min(0.99);
            if rng.gen::<f64>() < join_dropout {
                continue;
            }
            let related = model
                .perceived_fact(e, &join.via_attribute)
                .and_then(|v| match v {
                    FactValue::Entity(id) => {
                        let target = model.knowledge().entity(id);
                        model
                            .perceived_fact(target, &join.related_attribute)
                            .map(|rv| {
                                model.render_value(
                                    &rv,
                                    &target.entity_type.clone(),
                                    &join.related_attribute,
                                    &mut rng,
                                )
                            })
                    }
                    other => Some(model.render_value(&other, &ty, &join.via_attribute, &mut rng)),
                })
                .unwrap_or_else(|| "unknown".to_string());
            cells.push(related);
        }
        if cells.len() == 1 {
            simple_keys.push(cells.remove(0));
        } else {
            let head = cells.remove(0);
            lines.push(format!("- {head}: {}", cells.join(", ")));
        }
    }

    if !simple_keys.is_empty() {
        let list = simple_keys.join(", ");
        if profile.verbose {
            format!("The {} values are: {list}.", q.select[0])
        } else {
            format!("{list}.")
        }
    } else if profile.verbose {
        format!("Here is what I found:\n{}", lines.join("\n"))
    } else {
        lines.join("\n")
    }
}

fn is_key_like(attr: &str) -> bool {
    let a = attr.to_ascii_lowercase();
    a == "name" || a.ends_with("name") || a == "code" || a == "title"
}

fn answer_aggregate(
    model: &SimLlm,
    q: &QueryIntent,
    agg: &crate::nlq::AggIntent,
    survivors: &[&crate::knowledge::Entity],
    cot: bool,
    rng: &mut StdRng,
) -> String {
    let profile = model.profile().clone();
    let arith_err = profile.arithmetic_rel_err
        * if cot {
            profile.cot_arithmetic_factor
        } else {
            1.0
        };
    let ty = model.relation_type(&q.relation);

    let compute = |vals: &[f64], rng: &mut StdRng| -> Option<f64> {
        let exact = match agg.kind {
            AggKind::Count => vals.len() as f64,
            AggKind::Sum => vals.iter().sum(),
            AggKind::Avg => {
                if vals.is_empty() {
                    return None;
                }
                vals.iter().sum::<f64>() / vals.len() as f64
            }
            AggKind::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
            AggKind::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
        if !exact.is_finite() {
            return None;
        }
        // MIN/MAX are selections, not arithmetic: the model can usually
        // pick an element; errors come from its wrong beliefs. COUNT/SUM/
        // AVG require the arithmetic the paper says LLMs are bad at.
        let noisy = match agg.kind {
            AggKind::Min | AggKind::Max => exact,
            _ => noise::perturb_number(exact, arith_err, rng),
        };
        Some(noisy)
    };

    let member_values = |members: &[&crate::knowledge::Entity]| -> Vec<f64> {
        match (&agg.attribute, agg.kind) {
            (None, _) | (_, AggKind::Count) => vec![0.0; members.len()],
            (Some(attr), _) => members
                .iter()
                .filter_map(|e| model.perceived_fact(e, attr).as_ref().and_then(fact_number))
                .collect(),
        }
    };

    match &agg.group_by {
        None => {
            let vals = member_values(survivors);
            match compute(&vals, rng) {
                Some(v) => {
                    let rendered = noise::render_number(
                        v,
                        noise::pick_number_style(rng, profile.format_noise),
                    );
                    if profile.verbose {
                        format!("The answer is {rendered}.")
                    } else {
                        rendered
                    }
                }
                None => "Unknown".to_string(),
            }
        }
        Some(group_attr) => {
            // Group members by the *believed* group value.
            let mut order: Vec<String> = Vec::new();
            let mut groups: std::collections::HashMap<String, Vec<&crate::knowledge::Entity>> =
                std::collections::HashMap::new();
            for e in survivors {
                let label = match model.perceived_fact(e, group_attr) {
                    Some(v) => model.render_value(&v, &ty, group_attr, rng),
                    None => continue,
                };
                if !groups.contains_key(&label) {
                    order.push(label.clone());
                }
                groups.entry(label).or_default().push(e);
            }
            if order.is_empty() {
                return "Unknown".to_string();
            }
            let mut lines = Vec::new();
            for label in order {
                let members = &groups[&label];
                let vals = member_values(members);
                if let Some(v) = compute(&vals, rng) {
                    let rendered = noise::render_number(
                        v,
                        noise::pick_number_style(rng, profile.format_noise),
                    );
                    lines.push(format!("- {label}: {rendered}"));
                }
            }
            lines.join("\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeStore;
    use crate::nlq::{AggIntent, JoinIntent};
    use crate::profiles::ModelProfile;
    use std::sync::Arc;

    fn model(profile: ModelProfile) -> SimLlm {
        let mut kb = KnowledgeStore::new();
        let italy = kb.add_entity("Italy", "country", 0.95);
        let france = kb.add_entity("France", "country", 0.9);
        let mayor = kb.add_entity("Anna Rossi", "mayor", 0.6);
        kb.add_fact(
            mayor,
            "birthDate",
            FactValue::Date {
                year: 1961,
                month: 5,
                day: 8,
            },
        );
        for (name, pop, n, c) in [
            ("Rome", 0.95, 2_800_000.0, italy),
            ("Milan", 0.7, 1_400_000.0, italy),
            ("Paris", 0.93, 2_100_000.0, france),
            ("Lyon", 0.35, 500_000.0, france),
        ] {
            let e = kb.add_entity(name, "city", pop);
            kb.add_fact(e, "population", FactValue::Number(n));
            kb.add_fact(e, "country", FactValue::Entity(c));
            kb.add_fact(e, "mayor", FactValue::Entity(mayor));
        }
        SimLlm::new(Arc::new(kb), profile)
    }

    fn q_list() -> QueryIntent {
        QueryIntent {
            relation: "city".into(),
            select: vec!["name".into()],
            condition: None,
            join: None,
            aggregate: None,
        }
    }

    #[test]
    fn oracle_lists_everything() {
        let m = model(ModelProfile::oracle());
        let ans = answer_question(&m, &q_list(), false, "p");
        for c in ["Rome", "Milan", "Paris", "Lyon"] {
            assert!(ans.contains(c), "{ans}");
        }
    }

    #[test]
    fn oracle_count_is_exact() {
        let m = model(ModelProfile::oracle());
        let q = QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Count,
                attribute: None,
                group_by: None,
            }),
        };
        assert_eq!(answer_question(&m, &q, false, "p"), "4");
    }

    #[test]
    fn oracle_avg_is_exact() {
        let m = model(ModelProfile::oracle());
        let q = QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Avg,
                attribute: Some("population".into()),
                group_by: None,
            }),
        };
        assert_eq!(answer_question(&m, &q, false, "p"), "1700000");
    }

    #[test]
    fn oracle_group_by_count() {
        let m = model(ModelProfile::oracle());
        let q = QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Count,
                attribute: None,
                group_by: Some("country".into()),
            }),
        };
        let ans = answer_question(&m, &q, false, "p");
        assert!(ans.contains("- Italy: 2"), "{ans}");
        assert!(ans.contains("- France: 2"), "{ans}");
    }

    #[test]
    fn oracle_join_reports_related_attribute() {
        let m = model(ModelProfile::oracle());
        let q = QueryIntent {
            relation: "city".into(),
            select: vec!["name".into()],
            condition: None,
            join: Some(JoinIntent {
                via_attribute: "mayor".into(),
                related_attribute: "birthDate".into(),
            }),
            aggregate: None,
        };
        let ans = answer_question(&m, &q, false, "p");
        assert!(ans.contains("Rome: 1961-05-08"), "{ans}");
    }

    #[test]
    fn noisy_models_miss_rows_in_qa() {
        let m = model(ModelProfile::flan());
        let ans = answer_question(&m, &q_list(), false, "p");
        let hits = ["Rome", "Milan", "Paris", "Lyon"]
            .iter()
            .filter(|c| ans.contains(**c))
            .count();
        assert!(hits < 4, "flan should miss rows: {ans}");
    }

    #[test]
    fn cot_flag_changes_aggregate_answer() {
        let m = model(ModelProfile::chatgpt());
        let q = QueryIntent {
            relation: "city".into(),
            select: vec![],
            condition: None,
            join: None,
            aggregate: Some(AggIntent {
                kind: AggKind::Sum,
                attribute: Some("population".into()),
                group_by: None,
            }),
        };
        // Different prompts → different noise draws; both must stay
        // parseable text.
        let a = answer_question(&m, &q, false, "plain prompt");
        let b = answer_question(&m, &q, true, "cot prompt step by step");
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn unknown_relation_is_unknown() {
        let m = model(ModelProfile::oracle());
        let q = QueryIntent {
            relation: "volcano".into(),
            select: vec!["name".into()],
            condition: None,
            join: None,
            aggregate: None,
        };
        assert_eq!(answer_question(&m, &q, false, "p"), "Unknown");
    }
}
