//! Deterministic fault injection: a model wrapper that fails requests on
//! a seeded schedule.
//!
//! Production LLM traffic fails constantly — transient 5xx errors,
//! latency spikes past the deadline, 429 load shedding, truncated or
//! garbled completions — and the surveys in PAPERS.md name unreliability,
//! not raw latency, as the dominant production failure mode. [`FaultyLlm`]
//! reproduces those failure modes *deterministically*: whether (and how
//! often, and in which way) a prompt's request fails is a pure function of
//! the [`FaultProfile`] seed, the prompt text, and the attempt ordinal —
//! never of thread timing — so chaos tests are exactly reproducible.
//!
//! The schedule is leading-failure shaped: a prompt drawn as faulty fails
//! its first `f` attempts (with `f` capped at
//! [`FaultProfile::max_consecutive`]) and then answers cleanly forever.
//! A retry budget of at least `max_consecutive` therefore *guarantees*
//! every prompt eventually produces the wrapped model's exact completion —
//! which is what makes the resilience equivalence battery possible: same
//! answers, same prompt counts net of retries, same cache hits, only the
//! virtual clock differs by the billed retry/backoff time.

use crate::model::{Completion, Fault, FaultKind, LanguageModel, Usage};
use crate::noise::seeded;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Marker prefix of degraded fault-completion text. Kept deliberately
/// un-answer-like (no `key: value` shape, no yes/no prefix) so every
/// existing parser already rejects it; [`is_fault_text`] lets the session
/// recognise it outright and degrade gracefully instead of mis-reading it.
pub const FAULT_MARKER: &str = "\u{26a1}fault";

/// Renders the degraded completion text for a fault kind.
pub fn fault_text(kind: FaultKind) -> String {
    format!("{FAULT_MARKER}:{kind}")
}

/// True when a completion's text is a degraded fault marker (see
/// [`FAULT_MARKER`]). Truncated-answer faults carry corrupted *answer*
/// text instead and are not detectable this way — by design: a garbled
/// answer looks like a garbled answer, and must survive the parsing
/// gauntlet on its own.
pub fn is_fault_text(text: &str) -> bool {
    text.trim_start().starts_with(FAULT_MARKER)
}

/// Parameter vector of one fault-injection schedule (the resilience
/// analogue of [`crate::ModelProfile`]'s noise dials).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Deterministic schedule seed; combined with prompt hashes.
    pub seed: u64,
    /// Probability that a prompt's request sequence starts with faults.
    pub fault_rate: f64,
    /// Relative weight of [`FaultKind::Transient`] draws.
    pub transient_weight: u32,
    /// Relative weight of [`FaultKind::Timeout`] draws.
    pub timeout_weight: u32,
    /// Relative weight of [`FaultKind::RateLimit`] draws.
    pub rate_limit_weight: u32,
    /// Relative weight of [`FaultKind::Truncated`] draws.
    pub truncated_weight: u32,
    /// Upper bound on consecutive leading failures of one prompt. A retry
    /// budget of at least this many re-asks guarantees a clean answer.
    pub max_consecutive: u32,
    /// Latency billed by a timed-out attempt (the deadline spent waiting).
    pub timeout_latency_ms: u64,
    /// Latency billed by a transient / rate-limit / truncated attempt.
    pub fault_latency_ms: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::with_rate(0.2)
    }
}

impl FaultProfile {
    /// A schedule failing roughly `rate` of all prompts, with all four
    /// fault kinds in play and at most 3 consecutive failures per prompt.
    pub fn with_rate(rate: f64) -> Self {
        FaultProfile {
            seed: 0xFA17,
            fault_rate: rate.clamp(0.0, 1.0),
            transient_weight: 4,
            timeout_weight: 2,
            rate_limit_weight: 2,
            truncated_weight: 2,
            max_consecutive: 3,
            timeout_latency_ms: 1_000,
            fault_latency_ms: 30,
        }
    }

    /// Number of leading failed attempts for a prompt: 0 for most prompts,
    /// `1..=max_consecutive` for the `fault_rate` share drawn as faulty.
    fn leading_faults(&self, prompt: &str) -> u32 {
        if self.fault_rate <= 0.0 || self.max_consecutive == 0 {
            return 0;
        }
        let u = seeded(self.seed, &["fault?", prompt]) as f64 / u64::MAX as f64;
        if u >= self.fault_rate {
            return 0;
        }
        1 + (seeded(self.seed, &["depth", prompt]) % u64::from(self.max_consecutive)) as u32
    }

    /// The fault kind of one attempt, drawn from the kind weights.
    fn kind_for(&self, prompt: &str, attempt: u32) -> FaultKind {
        let kinds = [
            (FaultKind::Transient, self.transient_weight),
            (FaultKind::Timeout, self.timeout_weight),
            (FaultKind::RateLimit, self.rate_limit_weight),
            (FaultKind::Truncated, self.truncated_weight),
        ];
        let total: u64 = kinds.iter().map(|&(_, w)| u64::from(w)).sum();
        if total == 0 {
            return FaultKind::Transient;
        }
        let attempt_label = attempt.to_string();
        let mut pick = seeded(self.seed, &["kind", prompt, &attempt_label]) % total;
        for (kind, weight) in kinds {
            let w = u64::from(weight);
            if pick < w {
                return kind;
            }
            pick -= w;
        }
        FaultKind::Transient
    }
}

/// A fault-injecting wrapper over any [`LanguageModel`].
///
/// [`LanguageModel::try_complete`] surfaces the scheduled faults as
/// `Err(Fault)`; [`LanguageModel::complete`] — the path a non-resilient
/// client takes — serves each fault's *degraded* completion instead:
/// fault-marker text (or a corrupted answer for
/// [`FaultKind::Truncated`]) with the failed attempt's latency billed.
/// Attempt ordinals are tracked per prompt, so retrying the same prompt
/// walks the schedule forward deterministically regardless of what other
/// prompts (or threads) are doing.
///
/// The wrapper signs itself into [`LanguageModel::signature`] (inner
/// signature + fault profile), so cross-query stores guarded by the model
/// signature invalidate cleanly when fault injection is toggled.
pub struct FaultyLlm {
    inner: Arc<dyn LanguageModel>,
    profile: FaultProfile,
    /// Attempts already made per prompt (the schedule cursor).
    attempts: Mutex<HashMap<String, u32>>,
}

impl FaultyLlm {
    /// Wraps a model with a fault schedule.
    pub fn new(inner: Arc<dyn LanguageModel>, profile: FaultProfile) -> Self {
        FaultyLlm {
            inner,
            profile,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The fault schedule in use.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Builds the degraded completion of one failed attempt.
    fn degraded(&self, prompt: &str, attempt: u32, kind: FaultKind) -> Completion {
        let latency_ms = match kind {
            FaultKind::Timeout => self.profile.timeout_latency_ms,
            _ => self.profile.fault_latency_ms,
        };
        let text = match kind {
            // A truncated/garbled answer: the inner model's clean text cut
            // at a schedule-drawn point, so it *looks* like a mangled
            // answer rather than an error page.
            FaultKind::Truncated => {
                let clean = self.inner.complete(prompt).text;
                let attempt_label = attempt.to_string();
                let keep = seeded(self.profile.seed, &["cut", prompt, &attempt_label]) as usize
                    % (clean.len() + 1);
                let mut cut = keep;
                while cut > 0 && !clean.is_char_boundary(cut) {
                    cut -= 1;
                }
                clean[..cut].to_string()
            }
            kind => fault_text(kind),
        };
        Completion {
            usage: Usage {
                prompt_tokens: crate::tokenizer::count_tokens(prompt),
                completion_tokens: crate::tokenizer::count_tokens(&text),
            },
            text,
            latency_ms,
        }
    }
}

impl LanguageModel for FaultyLlm {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn complete(&self, prompt: &str) -> Completion {
        self.try_complete(prompt)
            .unwrap_or_else(|fault| fault.degraded)
    }

    fn try_complete(&self, prompt: &str) -> Result<Completion, Fault> {
        let attempt = {
            let mut attempts = self.attempts.lock();
            let slot = attempts.entry(prompt.to_string()).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if attempt < self.profile.leading_faults(prompt) {
            let kind = self.profile.kind_for(prompt, attempt);
            return Err(Fault {
                kind,
                degraded: self.degraded(prompt, attempt, kind),
            });
        }
        Ok(self.inner.complete(prompt))
    }

    fn signature(&self) -> String {
        format!("{}+faults:{:?}", self.inner.signature(), self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FixedResponder;

    fn fixed() -> Arc<dyn LanguageModel> {
        Arc::new(FixedResponder {
            model_name: "fixed".into(),
            response: "the clean answer".into(),
        })
    }

    #[test]
    fn schedule_is_leading_failures_then_clean_forever() {
        let profile = FaultProfile::with_rate(1.0);
        let faulty = FaultyLlm::new(fixed(), profile.clone());
        let mut failures = 0;
        loop {
            match faulty.try_complete("prompt") {
                Err(_) => failures += 1,
                Ok(c) => {
                    assert_eq!(c.text, "the clean answer");
                    break;
                }
            }
            assert!(failures <= profile.max_consecutive, "schedule must cap");
        }
        assert!(failures >= 1, "rate 1.0 must fail the first attempt");
        // Once clean, clean forever.
        for _ in 0..3 {
            assert!(faulty.try_complete("prompt").is_ok());
        }
    }

    #[test]
    fn schedule_is_deterministic_across_instances() {
        let run = || {
            let faulty = FaultyLlm::new(fixed(), FaultProfile::with_rate(0.5));
            (0..40)
                .map(|i| {
                    let p = format!("p{i}");
                    (0..4)
                        .map(|_| match faulty.try_complete(&p) {
                            Ok(_) => 'o',
                            Err(f) => match f.kind {
                                FaultKind::Transient => 't',
                                FaultKind::Timeout => 'd',
                                FaultKind::RateLimit => 'r',
                                FaultKind::Truncated => 'x',
                            },
                        })
                        .collect::<String>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let faulty = FaultyLlm::new(fixed(), FaultProfile::with_rate(0.0));
        for i in 0..50 {
            assert!(faulty.try_complete(&format!("p{i}")).is_ok());
        }
    }

    #[test]
    fn complete_serves_the_degraded_completion() {
        let faulty = FaultyLlm::new(fixed(), FaultProfile::with_rate(1.0));
        let first = faulty.complete("prompt");
        // First attempt of a rate-1.0 schedule always fails: marker text
        // or a strict prefix of the clean answer (truncation).
        assert!(
            is_fault_text(&first.text) || "the clean answer".starts_with(&first.text),
            "unexpected degraded text: {:?}",
            first.text
        );
    }

    #[test]
    fn timeout_bills_the_deadline() {
        let profile = FaultProfile {
            fault_rate: 1.0,
            transient_weight: 0,
            timeout_weight: 1,
            rate_limit_weight: 0,
            truncated_weight: 0,
            ..FaultProfile::default()
        };
        let faulty = FaultyLlm::new(fixed(), profile.clone());
        let fault = faulty.try_complete("prompt").unwrap_err();
        assert_eq!(fault.kind, FaultKind::Timeout);
        assert_eq!(fault.degraded.latency_ms, profile.timeout_latency_ms);
    }

    #[test]
    fn signature_folds_the_profile_in() {
        let a = FaultyLlm::new(fixed(), FaultProfile::with_rate(0.1));
        let b = FaultyLlm::new(fixed(), FaultProfile::with_rate(0.2));
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), fixed().signature());
    }

    #[test]
    fn fault_text_round_trip() {
        assert!(is_fault_text(&fault_text(FaultKind::Transient)));
        assert!(is_fault_text("  \u{26a1}fault:rate-limit"));
        assert!(!is_fault_text("Rome, Paris, Milan"));
        assert!(!is_fault_text("No more results"));
    }
}
