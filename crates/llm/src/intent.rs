//! The prompt protocol: intents, their natural-language rendering, and the
//! simulator-side parsing.
//!
//! Galois compiles plan operators into *text* prompts (paper §4, Figure 4);
//! the simulated LLM receives that text and must recover the task the same
//! way a real LLM infers it from wording. This module defines both
//! directions:
//!
//! * `render_*` — the canonical English templates ("Has *relationName
//!   keyName attributeName operator value*?" in the paper's notation),
//!   used by the prompt generator and by the dataset's NL paraphrases;
//! * `parse_*` — pattern matching used by [`crate::simllm::SimLlm`].
//!
//! Round-tripping (`parse(render(x)) == x`) is property-tested; the pair is
//! kept in one module precisely so the "protocol" cannot silently fork.

use std::fmt;
use std::sync::Arc;

/// Comparison operators usable in prompt conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// equal to
    Eq,
    /// different from
    NotEq,
    /// greater than
    Gt,
    /// at least
    GtEq,
    /// less than
    Lt,
    /// at most
    LtEq,
    /// between a and b (inclusive)
    Between,
    /// one of a fixed list
    In,
    /// matches a `%`/`_` pattern
    Like,
    /// value is unknown/missing
    IsNull,
    /// value is known/present
    IsNotNull,
}

/// A value as it appears in prompt text: quoted text or a bare token.
#[derive(Debug, Clone, PartialEq)]
pub enum PromptValue {
    /// A quoted string (`'Rome'`).
    Text(String),
    /// A bare numeric token (`1000000` / `2.5`).
    Number(f64),
}

impl PromptValue {
    /// Parses a rendered value token.
    pub fn parse(token: &str) -> Option<PromptValue> {
        let t = token.trim();
        if let Some(stripped) = t.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
            return Some(PromptValue::Text(stripped.to_string()));
        }
        t.parse::<f64>().ok().map(PromptValue::Number)
    }

    /// The text payload, if textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PromptValue::Text(s) => Some(s),
            PromptValue::Number(_) => None,
        }
    }

    /// The numeric payload, if numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            PromptValue::Number(n) => Some(*n),
            PromptValue::Text(_) => None,
        }
    }
}

impl fmt::Display for PromptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromptValue::Text(s) => write!(f, "'{s}'"),
            PromptValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

/// A condition over one attribute, in prompt-protocol form.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Attribute label as written in the query.
    pub attribute: String,
    /// Operator.
    pub op: CmpOp,
    /// Operand values (0 for IS NULL, 1 for comparisons, 2 for BETWEEN,
    /// n for IN).
    pub values: Vec<PromptValue>,
}

impl Condition {
    /// Renders the condition as `<attribute> is <phrase>`.
    pub fn render(&self) -> String {
        format!("{} is {}", self.attribute, self.render_phrase())
    }

    /// Renders only the operator phrase (`greater than 1000000`).
    ///
    /// Well-formed conditions (the operand counts documented on
    /// [`Condition::values`]) render their canonical template. A condition
    /// missing an operand — which only arises from hand-built or corrupted
    /// values, never from [`Condition::parse`] — renders a `?` placeholder
    /// instead of panicking, so a worker thread formatting a prompt can
    /// never be killed by malformed input.
    pub fn render_phrase(&self) -> String {
        let v = |i: usize| {
            self.values
                .get(i)
                .map(PromptValue::to_string)
                .unwrap_or_else(|| "?".to_string())
        };
        match self.op {
            CmpOp::Eq => format!("equal to {}", v(0)),
            CmpOp::NotEq => format!("different from {}", v(0)),
            CmpOp::Gt => format!("greater than {}", v(0)),
            CmpOp::GtEq => format!("at least {}", v(0)),
            CmpOp::Lt => format!("less than {}", v(0)),
            CmpOp::LtEq => format!("at most {}", v(0)),
            CmpOp::Between => format!("between {} and {}", v(0), v(1)),
            CmpOp::In => {
                let items: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
                format!("one of {}", items.join(" / "))
            }
            CmpOp::Like => format!("matching the pattern {}", v(0)),
            CmpOp::IsNull => "unknown".to_string(),
            CmpOp::IsNotNull => "known".to_string(),
        }
    }

    /// Parses `<attribute> is <phrase>`.
    pub fn parse(text: &str) -> Option<Condition> {
        let (attribute, phrase) = text.split_once(" is ")?;
        let mut c = Self::parse_phrase(phrase)?;
        c.attribute = attribute.trim().to_string();
        Some(c)
    }

    /// Parses an operator phrase; the returned condition has an empty
    /// attribute.
    pub fn parse_phrase(phrase: &str) -> Option<Condition> {
        let phrase = phrase.trim().trim_end_matches(['?', '.']);
        let mk = |op, values| {
            Some(Condition {
                attribute: String::new(),
                op,
                values,
            })
        };
        let one = |rest: &str, op| {
            let v = PromptValue::parse(rest)?;
            mk(op, vec![v])
        };
        if let Some(r) = phrase.strip_prefix("equal to ") {
            return one(r, CmpOp::Eq);
        }
        if let Some(r) = phrase.strip_prefix("different from ") {
            return one(r, CmpOp::NotEq);
        }
        if let Some(r) = phrase.strip_prefix("greater than ") {
            return one(r, CmpOp::Gt);
        }
        if let Some(r) = phrase.strip_prefix("at least ") {
            return one(r, CmpOp::GtEq);
        }
        if let Some(r) = phrase.strip_prefix("less than ") {
            return one(r, CmpOp::Lt);
        }
        if let Some(r) = phrase.strip_prefix("at most ") {
            return one(r, CmpOp::LtEq);
        }
        if let Some(r) = phrase.strip_prefix("between ") {
            let (a, b) = r.split_once(" and ")?;
            let va = PromptValue::parse(a)?;
            let vb = PromptValue::parse(b)?;
            return mk(CmpOp::Between, vec![va, vb]);
        }
        if let Some(r) = phrase.strip_prefix("one of ") {
            let values: Option<Vec<PromptValue>> = r.split(" / ").map(PromptValue::parse).collect();
            return mk(CmpOp::In, values?);
        }
        if let Some(r) = phrase.strip_prefix("matching the pattern ") {
            return one(r, CmpOp::Like);
        }
        if phrase == "unknown" {
            return mk(CmpOp::IsNull, vec![]);
        }
        if phrase == "known" {
            return mk(CmpOp::IsNotNull, vec![]);
        }
        None
    }
}

/// A retrieval task decoded from an operator prompt.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskIntent {
    /// List key values of a relation (paper: base-relation access).
    ListKeys {
        /// Relation name as written in the query.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Optional pushed-down condition (prompt-pushdown optimization).
        condition: Option<Condition>,
        /// Keys already retrieved (the "Return more results" iteration).
        /// Shared behind an `Arc` so the iterating caller can hand the
        /// growing list to each successive prompt without re-cloning every
        /// previously seen key (the list is O(relation) by the last page).
        exclude: Arc<Vec<String>>,
    },
    /// List one page of key values by *offset* instead of by exclusion
    /// list: "starting after the first `offset` results". The speculative
    /// page protocol of the key-universe store fires these for pages past
    /// the first — the offset names the page boundary, so later pages can
    /// be requested in parallel while earlier ones are still parsing
    /// (an exclusion prompt can only be rendered once every prior key is
    /// known).
    ListKeysPage {
        /// Relation name as written in the query.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Optional pushed-down condition (prompt-pushdown optimization).
        condition: Option<Condition>,
        /// How many leading results to skip.
        offset: usize,
    },
    /// Fetch one attribute value for one key (paper: injected retrieval
    /// node before selections/joins/projections).
    FetchAttr {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key value identifying the tuple.
        key: String,
        /// Attribute to retrieve.
        attribute: String,
    },
    /// Boolean membership check (paper: selection operator prompt, "Has
    /// city c.name more than 1M population?").
    CheckFilter {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key value identifying the tuple.
        key: String,
        /// Condition to check.
        condition: Condition,
    },
    /// Multi-key attribute fetch: one prompt asks the same attribute for a
    /// whole batch of keys and the model answers one `key: value` line per
    /// key. Amortises the fixed preamble/instruction tokens the paper's
    /// per-cell prompts re-pay for every key (§5 reports *batched*
    /// prompts).
    FetchAttrBatch {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key values, one per requested line (rendered one per `- ` line;
        /// keys may contain `:` and commas, but never newlines).
        keys: Vec<String>,
        /// Attribute to retrieve.
        attribute: String,
    },
    /// Multi-key boolean filter check: one prompt carries the condition
    /// once and a batch of keys; the model answers one `key: Yes`/`key:
    /// No` line per key.
    FilterKeysBatch {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key values, one per requested line.
        keys: Vec<String>,
        /// Condition to check for every key.
        condition: Condition,
    },
    /// Grid-fused fetch: one prompt asks *several* attributes for a whole
    /// batch of keys and the model answers one `key ⌁ attr: value` line
    /// per (key, attribute) cell. Fuses `FetchAttrBatch` across columns so
    /// a scan step pays `ceil(C/A) × ceil(keys/B)` fetch prompts instead
    /// of `C × ceil(keys/B)`.
    FetchGridBatch {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key values, one per requested line (same `- ` line protocol as
        /// the single-attribute batch; keys may contain `:` and commas).
        keys: Vec<String>,
        /// Attributes to retrieve for every key, in answer-column order.
        attributes: Vec<String>,
    },
}

// ---------------------------------------------------------------------
// Rendering (used by galois-core's prompt generator)
// ---------------------------------------------------------------------

/// Renders the question line of a [`TaskIntent`] (without the few-shot
/// preamble; that is model-specific and added by the prompt builder).
pub fn render_task(intent: &TaskIntent) -> String {
    match intent {
        TaskIntent::ListKeys {
            relation,
            key_attr,
            condition,
            exclude,
        } => {
            let cond = condition
                .as_ref()
                .map(|c| format!(" whose {}", c.render()))
                .unwrap_or_default();
            if exclude.is_empty() {
                format!(
                    "List the {key_attr} of every {relation}{cond}. \
                     Answer with a comma-separated list of values only."
                )
            } else {
                format!(
                    "List the {key_attr} of every {relation}{cond}, excluding: {}. \
                     Answer with a comma-separated list of new values only, \
                     or say \"No more results\".",
                    exclude.join("; ")
                )
            }
        }
        TaskIntent::ListKeysPage {
            relation,
            key_attr,
            condition,
            offset,
        } => {
            let cond = condition
                .as_ref()
                .map(|c| format!(" whose {}", c.render()))
                .unwrap_or_default();
            format!(
                "List the {key_attr} of every {relation}{cond}, starting after the first \
                 {offset} results. Answer with a comma-separated list of new values only, \
                 or say \"No more results\"."
            )
        }
        TaskIntent::FetchAttr {
            relation,
            key_attr,
            key,
            attribute,
        } => {
            let (prefix, suffix) = render_fetch_attr_parts(relation, key_attr, attribute);
            format!("{prefix}{key}{suffix}")
        }
        TaskIntent::CheckFilter {
            relation,
            key_attr,
            key,
            condition,
        } => format!(
            "For the {relation} identified by {key_attr} '{key}', is its {} {}? \
             Answer \"Yes\" or \"No\".",
            condition.attribute,
            condition.render_phrase(),
        ),
        TaskIntent::FetchAttrBatch {
            relation,
            key_attr,
            keys,
            attribute,
        } => format!(
            "For each {relation} identified by {key_attr} listed below, what is its \
             {attribute}? {FETCH_BATCH_MARKER}\n{}",
            render_key_lines(keys),
        ),
        TaskIntent::FilterKeysBatch {
            relation,
            key_attr,
            keys,
            condition,
        } => format!(
            "For each {relation} identified by {key_attr} listed below, is its {} {}? \
             {FILTER_BATCH_MARKER}\n{}",
            condition.attribute,
            condition.render_phrase(),
            render_key_lines(keys),
        ),
        TaskIntent::FetchGridBatch {
            relation,
            key_attr,
            keys,
            attributes,
        } => format!(
            "For each {relation} identified by {key_attr} listed below, what are its \
             {}? {FETCH_GRID_MARKER}\n{}",
            attributes.join(" / "),
            render_key_lines(keys),
        ),
    }
}

/// The [`TaskIntent::FetchAttr`] question split around the key. The fetch
/// phase renders one question per `(key, attribute)` cell and everything
/// except the key is constant per cell, so prompt builders can precompute
/// both halves once and splice each key in: `prefix + key + suffix` is
/// byte-identical to [`render_task`] on the equivalent intent (the render
/// arm itself goes through this function, so the two cannot fork).
pub fn render_fetch_attr_parts(
    relation: &str,
    key_attr: &str,
    attribute: &str,
) -> (String, String) {
    (
        format!("For the {relation} identified by {key_attr} '"),
        format!("', what is its {attribute}? Answer with the value only, or \"Unknown\"."),
    )
}

/// Instruction sentence of a batched fetch prompt. Doubling as the parse
/// marker keeps rendering and parsing in lock-step (the protocol cannot
/// silently fork).
const FETCH_BATCH_MARKER: &str = "Answer with exactly one line per key, \
     formatted as \"key: value\", or \"key: Unknown\". The keys:";

/// Instruction sentence of a batched filter prompt.
const FILTER_BATCH_MARKER: &str = "Answer with exactly one line per key, \
     formatted as \"key: Yes\" or \"key: No\". The keys:";

/// The `key ⌁ attribute` separator of a grid answer line. U+2301 never
/// occurs in schema attribute names or generated keys, so the line prefix
/// `"{key} ⌁ {attr}: "` is unambiguous even when attribute names collide
/// with key names or either side contains `:`.
pub const GRID_SEP: &str = " \u{2301} ";

/// Instruction sentence of a grid-fused fetch prompt.
const FETCH_GRID_MARKER: &str = "Answer with exactly one line per key and attribute, \
     formatted as \"key \u{2301} attribute: value\", or \
     \"key \u{2301} attribute: Unknown\". The keys:";

/// Renders batch keys one per line behind a `- ` marker. Parsing strips
/// exactly one marker, so keys that themselves start with `- ` round-trip
/// (`- X` renders as `- - X`); keys may contain `:` and commas freely —
/// the line structure, not a delimiter, carries the boundary.
fn render_key_lines(keys: &[String]) -> String {
    let mut out = String::with_capacity(keys.iter().map(|k| k.len() + 3).sum());
    for (i, key) in keys.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("- ");
        out.push_str(key);
    }
    out
}

/// Parses the `- key` lines of a batched prompt body.
fn parse_key_lines(body: &str) -> Option<Vec<String>> {
    let mut keys = Vec::new();
    for line in body.lines() {
        // Exactly one marker strip: see `render_key_lines`.
        keys.push(line.strip_prefix("- ")?.to_string());
    }
    Some(keys)
}

/// Splits a batched answer into per-key payloads in key order.
///
/// The model is asked for one `key: payload` line per key; lines are
/// consumed greedily in order (first unconsumed line whose prefix is
/// `"{key}: "` wins), so duplicate keys map to successive lines and a key
/// whose line the model dropped or garbled yields `None` — the caller's
/// per-key fallback re-asks exactly those.
///
/// Keys may shadow each other when one contains `:` (`"Rome"` prefixes
/// `"Rome: Italy"`'s line): a line is assigned to a key only if no
/// *longer* key of the batch also owns it, so a dropped line can never
/// silently reroute another key's answer — the shadowed key just falls
/// back (batching may cost prompts, never accuracy).
pub fn split_batched_answer(answer: &str, keys: &[String]) -> Vec<Option<String>> {
    let lines: Vec<&str> = answer.lines().map(str::trim).collect();
    let mut used = vec![false; lines.len()];
    fn owns<'a>(key: &str, line: &'a str) -> Option<&'a str> {
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(": "))
    }
    keys.iter()
        .map(|key| {
            for (i, line) in lines.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if let Some(payload) = owns(key, line) {
                    let shadowed = keys
                        .iter()
                        .any(|other| other.len() > key.len() && owns(other, line).is_some());
                    if shadowed {
                        continue;
                    }
                    used[i] = true;
                    return Some(payload.to_string());
                }
            }
            None
        })
        .collect()
}

/// Renders per-key payloads as the `key: payload` answer lines of a
/// batched prompt — the inverse of [`split_batched_answer`].
pub fn render_batched_answer<'a, I>(pairs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut out = String::new();
    for (i, (key, payload)) in pairs.into_iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(key);
        out.push_str(": ");
        out.push_str(payload);
    }
    out
}

/// Splits a grid answer into per-cell payloads: `result[ki][ai]` is the
/// payload for `keys[ki]` × `attrs[ai]`, or `None` when that cell's line
/// was dropped or garbled (the caller's fallback ladder re-asks exactly
/// those cells).
///
/// The model is asked for one `key ⌁ attr: payload` line per cell. Lines
/// are matched by their `"{key} ⌁ {attr}: "` prefix, not by position, so
/// a model that permutes answer lines still parses cleanly; duplicate
/// keys in a batch consume matching lines greedily in order. As in
/// [`split_batched_answer`], a line is assigned to a cell only if no cell
/// with a *longer* key also owns it — a key containing the separator can
/// never silently steal another cell's answer, it just falls back.
pub fn split_grid_answer(
    answer: &str,
    keys: &[String],
    attrs: &[String],
) -> Vec<Vec<Option<String>>> {
    let lines: Vec<&str> = answer.lines().map(str::trim).collect();
    let mut used = vec![false; lines.len()];
    fn owns<'a>(key: &str, attr: &str, line: &'a str) -> Option<&'a str> {
        line.strip_prefix(key)?
            .strip_prefix(GRID_SEP)?
            .strip_prefix(attr)?
            .strip_prefix(": ")
    }
    keys.iter()
        .map(|key| {
            attrs
                .iter()
                .map(|attr| {
                    for (i, line) in lines.iter().enumerate() {
                        if used[i] {
                            continue;
                        }
                        if let Some(payload) = owns(key, attr, line) {
                            let shadowed = keys.iter().any(|other| {
                                other.len() > key.len()
                                    && attrs.iter().any(|a| owns(other, a, line).is_some())
                            });
                            if shadowed {
                                continue;
                            }
                            used[i] = true;
                            return Some(payload.to_string());
                        }
                    }
                    None
                })
                .collect()
        })
        .collect()
}

/// Renders per-cell payloads as the `key ⌁ attr: payload` answer lines of
/// a grid-fused prompt — the inverse of [`split_grid_answer`].
pub fn render_grid_answer<'a, I>(cells: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a str, &'a str)>,
{
    let mut out = String::new();
    for (i, (key, attr, payload)) in cells.into_iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(key);
        out.push_str(GRID_SEP);
        out.push_str(attr);
        out.push_str(": ");
        out.push_str(payload);
    }
    out
}

// ---------------------------------------------------------------------
// Parsing (used by the simulated LLM)
// ---------------------------------------------------------------------

/// Byte offset where the final question's `Q: ` lead-in starts, if the
/// prompt carries one. Anchored to line starts — a `Q: ` in the middle of
/// a line (a question mentioning a key like `FAQ: basics`, or a batched
/// key list containing one) is content, not a marker.
pub fn question_start(prompt: &str) -> Option<usize> {
    match prompt.rfind("\nQ: ") {
        Some(i) => Some(i + 1),
        None => prompt.starts_with("Q: ").then_some(0),
    }
}

/// Extracts the final question from a full prompt (drops the few-shot
/// preamble: the question follows the last line-initial `Q: ` marker, or
/// is the whole text when no marker is present).
pub fn question_line(prompt: &str) -> &str {
    match question_start(prompt) {
        Some(i) => {
            let rest = &prompt[i + 3..];
            match rest.find("\nA:") {
                Some(j) => rest[..j].trim(),
                None => rest.trim(),
            }
        }
        None => prompt.trim(),
    }
}

/// The typed result of decoding an operator prompt.
///
/// The parsing hot path runs on worker threads over *model output and
/// injected fault text*, so it must classify garbage instead of panicking:
///
/// * [`Parsed`](ParseOutcome::Parsed) — a well-formed operator prompt;
/// * [`Malformed`](ParseOutcome::Malformed) — the text carries an operator
///   marker (`"List the … of every …"`, `"For the … identified by …"`,
///   `"For each … identified by …"`) but the body does not decode: a
///   truncated or garbled prompt, not a natural-language question. The
///   payload names the family, for diagnostics;
/// * [`Unrecognized`](ParseOutcome::Unrecognized) — no operator marker at
///   all; callers route these to the NL question-answering path.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// A well-formed operator prompt and its decoded task.
    Parsed(TaskIntent),
    /// Operator-shaped text whose body failed to decode; the payload names
    /// the protocol family whose marker matched.
    Malformed(&'static str),
    /// No operator marker — not part of the prompt protocol.
    Unrecognized,
}

impl ParseOutcome {
    /// The decoded task, if the prompt was well-formed.
    pub fn intent(self) -> Option<TaskIntent> {
        match self {
            ParseOutcome::Parsed(t) => Some(t),
            _ => None,
        }
    }
}

/// Decodes an operator prompt into a typed [`ParseOutcome`] — the
/// panic-free entry point for the parsing hot path.
pub fn parse_task_outcome(prompt: &str) -> ParseOutcome {
    let q = question_line(prompt);
    let parsed = parse_list_keys(q)
        .or_else(|| parse_fetch_attr(q))
        .or_else(|| parse_check_filter(q))
        .or_else(|| parse_fetch_attr_batch(q))
        .or_else(|| parse_fetch_grid_batch(q))
        .or_else(|| parse_filter_keys_batch(q));
    if let Some(t) = parsed {
        return ParseOutcome::Parsed(t);
    }
    // No family decoded; classify by marker so callers can tell a garbled
    // operator prompt apart from an ordinary NL question.
    if q.starts_with("List the ") && q.contains(" of every ") && q.contains(". Answer with") {
        return ParseOutcome::Malformed("list-keys");
    }
    if q.starts_with("For the ") && q.contains(" identified by ") {
        return ParseOutcome::Malformed("per-key fetch/filter");
    }
    if q.starts_with("For each ") && q.contains(" identified by ") {
        return ParseOutcome::Malformed("batched fetch/filter");
    }
    ParseOutcome::Unrecognized
}

/// Attempts to decode an operator prompt into a [`TaskIntent`] — the
/// `Option` adapter over [`parse_task_outcome`] (malformed and
/// unrecognized both map to `None`).
pub fn parse_task(prompt: &str) -> Option<TaskIntent> {
    parse_task_outcome(prompt).intent()
}

fn parse_list_keys(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("List the ")?;
    let (head, tail) = rest.split_once(" of every ")?;
    let key_attr = head.trim().to_string();
    // tail: `<relation>[ whose <cond>][, excluding: …]. Answer with …`.
    // The "Answer with" marker is mandatory: it is what distinguishes an
    // operator prompt from an NL question that also starts with "List
    // the … of every …" (those go through the QA path instead).
    let (body, _) = tail.split_once(". Answer with")?;
    let body = body.trim();
    // Offset-page form: `…, starting after the first N results`.
    if let Some((b, off)) = body.split_once(", starting after the first ") {
        let offset: usize = off.strip_suffix(" results")?.trim().parse().ok()?;
        let (relation, condition) = match b.split_once(" whose ") {
            Some((r, c)) => (r.trim().to_string(), Some(Condition::parse(c)?)),
            None => (b.trim().to_string(), None),
        };
        if relation.is_empty() || key_attr.is_empty() {
            return None;
        }
        return Some(TaskIntent::ListKeysPage {
            relation,
            key_attr,
            condition,
            offset,
        });
    }
    let (body, exclude) = match body.split_once(", excluding: ") {
        Some((b, ex)) => (
            b,
            Arc::new(
                ex.split("; ")
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            ),
        ),
        None => (body, Arc::new(Vec::new())),
    };
    let (relation, condition) = match body.split_once(" whose ") {
        Some((r, c)) => (r.trim().to_string(), Some(Condition::parse(c)?)),
        None => (body.trim().to_string(), None),
    };
    if relation.is_empty() || key_attr.is_empty() {
        return None;
    }
    Some(TaskIntent::ListKeys {
        relation,
        key_attr,
        condition,
        exclude,
    })
}

fn parse_fetch_attr(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For the ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" '")?;
    let (key, rest) = rest.split_once("', what is its ")?;
    let attribute = rest.split('?').next()?.trim().to_string();
    Some(TaskIntent::FetchAttr {
        relation: relation.trim().to_string(),
        key_attr: key_attr.trim().to_string(),
        key: key.to_string(),
        attribute,
    })
}

fn parse_fetch_attr_batch(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For each ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" listed below, what is its ")?;
    let (attribute, body) = rest.split_once(&format!("? {FETCH_BATCH_MARKER}\n"))?;
    Some(TaskIntent::FetchAttrBatch {
        relation: relation.trim().to_string(),
        key_attr: key_attr.trim().to_string(),
        keys: parse_key_lines(body)?,
        attribute: attribute.trim().to_string(),
    })
}

fn parse_fetch_grid_batch(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For each ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" listed below, what are its ")?;
    let (attributes, body) = rest.split_once(&format!("? {FETCH_GRID_MARKER}\n"))?;
    let attributes: Vec<String> = attributes
        .split(" / ")
        .map(|a| a.trim().to_string())
        .collect();
    if attributes.iter().any(String::is_empty) {
        return None;
    }
    Some(TaskIntent::FetchGridBatch {
        relation: relation.trim().to_string(),
        key_attr: key_attr.trim().to_string(),
        keys: parse_key_lines(body)?,
        attributes,
    })
}

fn parse_filter_keys_batch(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For each ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" listed below, is its ")?;
    let (question, body) = rest.split_once(&format!("? {FILTER_BATCH_MARKER}\n"))?;
    // `question` = `<attribute> <phrase>`; longest attribute first, as in
    // the single-key filter parser.
    let words: Vec<&str> = question.split(' ').collect();
    for split in (1..words.len()).rev() {
        let attribute = words[..split].join(" ");
        let phrase = words[split..].join(" ");
        if let Some(mut c) = Condition::parse_phrase(&phrase) {
            c.attribute = attribute;
            return Some(TaskIntent::FilterKeysBatch {
                relation: relation.trim().to_string(),
                key_attr: key_attr.trim().to_string(),
                keys: parse_key_lines(body)?,
                condition: c,
            });
        }
    }
    None
}

fn parse_check_filter(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For the ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" '")?;
    let (key, rest) = rest.split_once("', is its ")?;
    let question = rest.split("? Answer").next()?;
    // question = `<attribute> <phrase>`; the attribute is the first token
    // run until a known phrase start. Try longest attribute first.
    let words: Vec<&str> = question.split(' ').collect();
    for split in (1..words.len()).rev() {
        let attribute = words[..split].join(" ");
        let phrase = words[split..].join(" ");
        if let Some(mut c) = Condition::parse_phrase(&phrase) {
            c.attribute = attribute;
            return Some(TaskIntent::CheckFilter {
                relation: relation.trim().to_string(),
                key_attr: key_attr.trim().to_string(),
                key: key.to_string(),
                condition: c,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(attr: &str, op: CmpOp, values: Vec<PromptValue>) -> Condition {
        Condition {
            attribute: attr.to_string(),
            op,
            values,
        }
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            PromptValue::Text("Rome".into()),
            PromptValue::Number(1000000.0),
            PromptValue::Number(2.5),
        ] {
            assert_eq!(PromptValue::parse(&v.to_string()), Some(v));
        }
    }

    #[test]
    fn condition_phrases_roundtrip() {
        let cases = vec![
            cond("population", CmpOp::Gt, vec![PromptValue::Number(1e6)]),
            cond("name", CmpOp::Eq, vec![PromptValue::Text("Rome".into())]),
            cond(
                "population",
                CmpOp::Between,
                vec![PromptValue::Number(10.0), PromptValue::Number(20.0)],
            ),
            cond(
                "country",
                CmpOp::In,
                vec![
                    PromptValue::Text("Italy".into()),
                    PromptValue::Text("France".into()),
                ],
            ),
            cond("name", CmpOp::Like, vec![PromptValue::Text("R%".into())]),
            cond("mayor", CmpOp::IsNull, vec![]),
            cond("mayor", CmpOp::IsNotNull, vec![]),
            cond("elevation", CmpOp::LtEq, vec![PromptValue::Number(100.0)]),
        ];
        for c in cases {
            let text = c.render();
            let parsed = Condition::parse(&text).unwrap_or_else(|| panic!("parse {text}"));
            assert_eq!(parsed, c, "{text}");
        }
    }

    #[test]
    fn task_list_keys_roundtrip() {
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: Some(cond(
                "population",
                CmpOp::Gt,
                vec![PromptValue::Number(1e6)],
            )),
            exclude: std::sync::Arc::new(vec![]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_list_keys_with_exclusions_roundtrip() {
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec!["Rome".into(), "Paris".into()]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_list_keys_page_roundtrip() {
        let t = TaskIntent::ListKeysPage {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            offset: 8,
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_list_keys_page_with_condition_roundtrip() {
        let t = TaskIntent::ListKeysPage {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: Some(cond(
                "population",
                CmpOp::Gt,
                vec![PromptValue::Number(1e6)],
            )),
            offset: 20,
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_fetch_attr_roundtrip() {
        let t = TaskIntent::FetchAttr {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Rome".into(),
            attribute: "population".into(),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_check_filter_roundtrip() {
        let t = TaskIntent::CheckFilter {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "New York City".into(),
            condition: cond("population", CmpOp::GtEq, vec![PromptValue::Number(1e6)]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn multi_word_attribute_in_filter() {
        let t = TaskIntent::CheckFilter {
            relation: "airport".into(),
            key_attr: "code".into(),
            key: "JFK".into(),
            condition: cond(
                "yearly passenger count",
                CmpOp::Gt,
                vec![PromptValue::Number(1e7)],
            ),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_fetch_attr_batch_roundtrip() {
        let t = TaskIntent::FetchAttrBatch {
            relation: "city".into(),
            key_attr: "name".into(),
            keys: vec!["Rome".into(), "New York City".into(), "- dashed".into()],
            attribute: "population".into(),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_filter_keys_batch_roundtrip() {
        let t = TaskIntent::FilterKeysBatch {
            relation: "city".into(),
            key_attr: "name".into(),
            keys: vec!["Rome".into(), "Paris".into()],
            condition: cond("population", CmpOp::Gt, vec![PromptValue::Number(1e6)]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn batched_keys_with_colons_and_commas_roundtrip() {
        let t = TaskIntent::FetchAttrBatch {
            relation: "song".into(),
            key_attr: "title".into(),
            keys: vec![
                "Home: Live, Vol. 2".into(),
                "a, b: c".into(),
                "plain".into(),
            ],
            attribute: "releaseYear".into(),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn split_batched_answer_matches_keys_in_order() {
        let keys: Vec<String> = vec!["Rome".into(), "Pa: ris".into(), "Lyon".into()];
        let answer = "Rome: 2800000\nPa: ris: Unknown\nLyon: 500000";
        assert_eq!(
            split_batched_answer(answer, &keys),
            vec![
                Some("2800000".to_string()),
                Some("Unknown".to_string()),
                Some("500000".to_string()),
            ]
        );
        // A dropped line yields None for that key only.
        let partial = "Rome: 2800000\nLyon: 500000";
        assert_eq!(
            split_batched_answer(partial, &keys),
            vec![
                Some("2800000".to_string()),
                None,
                Some("500000".to_string())
            ]
        );
    }

    #[test]
    fn shadowed_keys_fall_back_instead_of_stealing_answers() {
        // "Rome"'s line was dropped; the surviving line belongs to
        // "Rome: Italy". "Rome" must yield None (→ fallback re-ask), not
        // silently take "Italy: Yes" as its payload.
        let keys: Vec<String> = vec!["Rome".into(), "Rome: Italy".into()];
        assert_eq!(
            split_batched_answer("Rome: Italy: Yes", &keys),
            vec![None, Some("Yes".to_string())]
        );
        // With both lines present, both keys resolve.
        assert_eq!(
            split_batched_answer("Rome: No\nRome: Italy: Yes", &keys),
            vec![Some("No".to_string()), Some("Yes".to_string())]
        );
    }

    #[test]
    fn question_markers_inside_keys_do_not_hijack_the_question() {
        // A key containing "Q: " mid-line must not truncate the parsed
        // question: the marker is only recognised at line starts.
        let t = TaskIntent::FetchAttrBatch {
            relation: "song".into(),
            key_attr: "title".into(),
            keys: vec!["FAQ: The Basics".into(), "Plain".into()],
            attribute: "releaseYear".into(),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t.clone()));
        // And through a few-shot preamble + "\nA:" suffix, like the real
        // prompt builder produces.
        let wrapped = format!(
            "I am a bot.\nQ: What is 1+1?\nA: 2.\nQ: {}\nA:",
            render_task(&t)
        );
        assert_eq!(parse_task(&wrapped), Some(t));
    }

    #[test]
    fn split_batched_answer_handles_duplicates_and_garbage() {
        let keys: Vec<String> = vec!["A".into(), "A".into()];
        let answer = "A: 1\nA: 2";
        assert_eq!(
            split_batched_answer(answer, &keys),
            vec![Some("1".to_string()), Some("2".to_string())]
        );
        assert_eq!(split_batched_answer("nonsense", &keys), vec![None, None]);
    }

    #[test]
    fn render_batched_answer_is_split_inverse() {
        let keys: Vec<String> = vec!["Rome".into(), "Lyon".into()];
        let rendered = render_batched_answer(vec![("Rome", "Yes"), ("Lyon", "No")]);
        assert_eq!(
            split_batched_answer(&rendered, &keys),
            vec![Some("Yes".to_string()), Some("No".to_string())]
        );
    }

    #[test]
    fn task_fetch_grid_batch_roundtrip() {
        let t = TaskIntent::FetchGridBatch {
            relation: "city".into(),
            key_attr: "name".into(),
            keys: vec!["Rome".into(), "New York City".into(), "- dashed".into()],
            attributes: vec!["population".into(), "elevation".into()],
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t.clone()));
        let wrapped = format!(
            "I am a bot.\nQ: What is 1+1?\nA: 2.\nQ: {}\nA:",
            render_task(&t)
        );
        assert_eq!(parse_task(&wrapped), Some(t));
    }

    #[test]
    fn grid_keys_with_colons_and_commas_roundtrip() {
        let t = TaskIntent::FetchGridBatch {
            relation: "song".into(),
            key_attr: "title".into(),
            keys: vec![
                "Home: Live, Vol. 2".into(),
                "a, b: c".into(),
                "plain".into(),
            ],
            attributes: vec!["releaseYear".into(), "yearly passenger count".into()],
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn split_grid_answer_matches_cells_in_any_line_order() {
        let keys: Vec<String> = vec!["Rome".into(), "Pa: ris".into()];
        let attrs: Vec<String> = vec!["population".into(), "country".into()];
        // Lines permuted relative to (key, attr) request order: matching
        // is by prefix, not position.
        let answer = "Pa: ris \u{2301} country: France\n\
                      Rome \u{2301} population: 2800000\n\
                      Pa: ris \u{2301} population: Unknown\n\
                      Rome \u{2301} country: Italy: South";
        assert_eq!(
            split_grid_answer(answer, &keys, &attrs),
            vec![
                vec![
                    Some("2800000".to_string()),
                    Some("Italy: South".to_string())
                ],
                vec![Some("Unknown".to_string()), Some("France".to_string())],
            ]
        );
        // A dropped line yields None for that cell only.
        let partial = "Rome \u{2301} population: 2800000\nPa: ris \u{2301} country: France";
        assert_eq!(
            split_grid_answer(partial, &keys, &attrs),
            vec![
                vec![Some("2800000".to_string()), None],
                vec![None, Some("France".to_string())],
            ]
        );
    }

    #[test]
    fn split_grid_answer_handles_duplicate_keys_and_empty_values() {
        let keys: Vec<String> = vec!["A".into(), "A".into()];
        let attrs: Vec<String> = vec!["x".into()];
        // Duplicate keys consume matching lines greedily in order. An
        // *empty* payload trims down to a line without the ": " separator,
        // so it reads as garbled → None → the caller's fallback re-asks
        // that one cell (same contract as `split_batched_answer`; accuracy
        // is preserved by the re-ask, never by guessing).
        assert_eq!(
            split_grid_answer("A \u{2301} x: 1\nA \u{2301} x: ", &keys, &attrs),
            vec![vec![Some("1".to_string())], vec![None]]
        );
        assert_eq!(
            split_grid_answer("nonsense", &keys, &attrs),
            vec![vec![None], vec![None]]
        );
    }

    #[test]
    fn grid_attr_names_colliding_with_keys_do_not_cross_wire() {
        // The key "population" collides with the attribute "population";
        // the ⌁ separator keeps every cell unambiguous.
        let keys: Vec<String> = vec!["population".into(), "Rome".into()];
        let attrs: Vec<String> = vec!["population".into()];
        let answer = "population \u{2301} population: 7\nRome \u{2301} population: 9";
        assert_eq!(
            split_grid_answer(answer, &keys, &attrs),
            vec![vec![Some("7".to_string())], vec![Some("9".to_string())]]
        );
    }

    #[test]
    fn grid_shadowed_keys_fall_back_instead_of_stealing_answers() {
        // "Rome"'s line was dropped; the surviving line belongs to the
        // longer key "Rome ⌁ population: x" (a key that embeds the
        // separator). "Rome" must yield None, not steal the line.
        let keys: Vec<String> = vec!["Rome".into(), "Rome \u{2301} population: x".into()];
        let attrs: Vec<String> = vec!["population".into()];
        let answer = "Rome \u{2301} population: x \u{2301} population: 5";
        assert_eq!(
            split_grid_answer(answer, &keys, &attrs),
            vec![vec![None], vec![Some("5".to_string())]]
        );
    }

    #[test]
    fn render_grid_answer_is_split_inverse() {
        let keys: Vec<String> = vec!["Rome".into(), "Lyon".into()];
        let attrs: Vec<String> = vec!["population".into(), "country".into()];
        let rendered = render_grid_answer(vec![
            ("Rome", "population", "2800000"),
            ("Rome", "country", "Italy"),
            ("Lyon", "population", "500000"),
            ("Lyon", "country", "France"),
        ]);
        assert_eq!(
            split_grid_answer(&rendered, &keys, &attrs),
            vec![
                vec![Some("2800000".to_string()), Some("Italy".to_string())],
                vec![Some("500000".to_string()), Some("France".to_string())],
            ]
        );
    }

    #[test]
    fn question_line_extraction() {
        let prompt = "I am a bot.\nQ: What is 1+1?\nA: 2.\nQ: List the name of every city. \
                      Answer with a comma-separated list of values only.\nA:";
        assert!(question_line(prompt).starts_with("List the name"));
        assert_eq!(question_line("bare text"), "bare text");
    }

    #[test]
    fn garbage_does_not_parse_or_panic() {
        assert_eq!(parse_task("tell me a joke"), None);
        assert_eq!(parse_task(""), None);
        assert_eq!(parse_task("List the of every . Answer with"), None);
    }

    #[test]
    fn parse_outcome_classifies_garbled_operator_prompts() {
        // No marker at all → Unrecognized (routes to the QA path).
        assert_eq!(
            parse_task_outcome("tell me a joke"),
            ParseOutcome::Unrecognized
        );
        assert_eq!(parse_task_outcome(""), ParseOutcome::Unrecognized);
        // Marker present, body garbled → Malformed, naming the family.
        assert_eq!(
            parse_task_outcome("List the of every . Answer with"),
            ParseOutcome::Malformed("list-keys")
        );
        assert_eq!(
            parse_task_outcome("For the city identified by \u{26a1}garble"),
            ParseOutcome::Malformed("per-key fetch/filter")
        );
        assert_eq!(
            parse_task_outcome("For each city identified by name listed below, what"),
            ParseOutcome::Malformed("batched fetch/filter")
        );
        // Well-formed → Parsed, and the Option adapter agrees.
        let t = TaskIntent::FetchAttr {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Rome".into(),
            attribute: "population".into(),
        };
        let rendered = render_task(&t);
        assert_eq!(
            parse_task_outcome(&rendered),
            ParseOutcome::Parsed(t.clone())
        );
        assert_eq!(parse_task(&rendered), Some(t));
    }

    #[test]
    fn render_phrase_tolerates_missing_operands() {
        // A condition stripped of its operands (corrupted input) renders a
        // placeholder instead of panicking; well-formed conditions are
        // untouched (covered by `condition_phrases_roundtrip`).
        let c = cond("population", CmpOp::Between, vec![PromptValue::Number(5.0)]);
        assert_eq!(c.render_phrase(), "between 5 and ?");
        let c = cond("population", CmpOp::Gt, vec![]);
        assert_eq!(c.render_phrase(), "greater than ?");
    }
}
