//! The prompt protocol: intents, their natural-language rendering, and the
//! simulator-side parsing.
//!
//! Galois compiles plan operators into *text* prompts (paper §4, Figure 4);
//! the simulated LLM receives that text and must recover the task the same
//! way a real LLM infers it from wording. This module defines both
//! directions:
//!
//! * `render_*` — the canonical English templates ("Has *relationName
//!   keyName attributeName operator value*?" in the paper's notation),
//!   used by the prompt generator and by the dataset's NL paraphrases;
//! * `parse_*` — pattern matching used by [`crate::simllm::SimLlm`].
//!
//! Round-tripping (`parse(render(x)) == x`) is property-tested; the pair is
//! kept in one module precisely so the "protocol" cannot silently fork.

use std::fmt;
use std::sync::Arc;

/// Comparison operators usable in prompt conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// equal to
    Eq,
    /// different from
    NotEq,
    /// greater than
    Gt,
    /// at least
    GtEq,
    /// less than
    Lt,
    /// at most
    LtEq,
    /// between a and b (inclusive)
    Between,
    /// one of a fixed list
    In,
    /// matches a `%`/`_` pattern
    Like,
    /// value is unknown/missing
    IsNull,
    /// value is known/present
    IsNotNull,
}

/// A value as it appears in prompt text: quoted text or a bare token.
#[derive(Debug, Clone, PartialEq)]
pub enum PromptValue {
    /// A quoted string (`'Rome'`).
    Text(String),
    /// A bare numeric token (`1000000` / `2.5`).
    Number(f64),
}

impl PromptValue {
    /// Parses a rendered value token.
    pub fn parse(token: &str) -> Option<PromptValue> {
        let t = token.trim();
        if let Some(stripped) = t.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
            return Some(PromptValue::Text(stripped.to_string()));
        }
        t.parse::<f64>().ok().map(PromptValue::Number)
    }

    /// The text payload, if textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PromptValue::Text(s) => Some(s),
            PromptValue::Number(_) => None,
        }
    }

    /// The numeric payload, if numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            PromptValue::Number(n) => Some(*n),
            PromptValue::Text(_) => None,
        }
    }
}

impl fmt::Display for PromptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromptValue::Text(s) => write!(f, "'{s}'"),
            PromptValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

/// A condition over one attribute, in prompt-protocol form.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Attribute label as written in the query.
    pub attribute: String,
    /// Operator.
    pub op: CmpOp,
    /// Operand values (0 for IS NULL, 1 for comparisons, 2 for BETWEEN,
    /// n for IN).
    pub values: Vec<PromptValue>,
}

impl Condition {
    /// Renders the condition as `<attribute> is <phrase>`.
    pub fn render(&self) -> String {
        format!("{} is {}", self.attribute, self.render_phrase())
    }

    /// Renders only the operator phrase (`greater than 1000000`).
    pub fn render_phrase(&self) -> String {
        let v = |i: usize| self.values[i].to_string();
        match self.op {
            CmpOp::Eq => format!("equal to {}", v(0)),
            CmpOp::NotEq => format!("different from {}", v(0)),
            CmpOp::Gt => format!("greater than {}", v(0)),
            CmpOp::GtEq => format!("at least {}", v(0)),
            CmpOp::Lt => format!("less than {}", v(0)),
            CmpOp::LtEq => format!("at most {}", v(0)),
            CmpOp::Between => format!("between {} and {}", v(0), v(1)),
            CmpOp::In => {
                let items: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
                format!("one of {}", items.join(" / "))
            }
            CmpOp::Like => format!("matching the pattern {}", v(0)),
            CmpOp::IsNull => "unknown".to_string(),
            CmpOp::IsNotNull => "known".to_string(),
        }
    }

    /// Parses `<attribute> is <phrase>`.
    pub fn parse(text: &str) -> Option<Condition> {
        let (attribute, phrase) = text.split_once(" is ")?;
        let mut c = Self::parse_phrase(phrase)?;
        c.attribute = attribute.trim().to_string();
        Some(c)
    }

    /// Parses an operator phrase; the returned condition has an empty
    /// attribute.
    pub fn parse_phrase(phrase: &str) -> Option<Condition> {
        let phrase = phrase.trim().trim_end_matches(['?', '.']);
        let mk = |op, values| {
            Some(Condition {
                attribute: String::new(),
                op,
                values,
            })
        };
        let one = |rest: &str, op| {
            let v = PromptValue::parse(rest)?;
            mk(op, vec![v])
        };
        if let Some(r) = phrase.strip_prefix("equal to ") {
            return one(r, CmpOp::Eq);
        }
        if let Some(r) = phrase.strip_prefix("different from ") {
            return one(r, CmpOp::NotEq);
        }
        if let Some(r) = phrase.strip_prefix("greater than ") {
            return one(r, CmpOp::Gt);
        }
        if let Some(r) = phrase.strip_prefix("at least ") {
            return one(r, CmpOp::GtEq);
        }
        if let Some(r) = phrase.strip_prefix("less than ") {
            return one(r, CmpOp::Lt);
        }
        if let Some(r) = phrase.strip_prefix("at most ") {
            return one(r, CmpOp::LtEq);
        }
        if let Some(r) = phrase.strip_prefix("between ") {
            let (a, b) = r.split_once(" and ")?;
            let va = PromptValue::parse(a)?;
            let vb = PromptValue::parse(b)?;
            return mk(CmpOp::Between, vec![va, vb]);
        }
        if let Some(r) = phrase.strip_prefix("one of ") {
            let values: Option<Vec<PromptValue>> = r.split(" / ").map(PromptValue::parse).collect();
            return mk(CmpOp::In, values?);
        }
        if let Some(r) = phrase.strip_prefix("matching the pattern ") {
            return one(r, CmpOp::Like);
        }
        if phrase == "unknown" {
            return mk(CmpOp::IsNull, vec![]);
        }
        if phrase == "known" {
            return mk(CmpOp::IsNotNull, vec![]);
        }
        None
    }
}

/// A retrieval task decoded from an operator prompt.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskIntent {
    /// List key values of a relation (paper: base-relation access).
    ListKeys {
        /// Relation name as written in the query.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Optional pushed-down condition (prompt-pushdown optimization).
        condition: Option<Condition>,
        /// Keys already retrieved (the "Return more results" iteration).
        /// Shared behind an `Arc` so the iterating caller can hand the
        /// growing list to each successive prompt without re-cloning every
        /// previously seen key (the list is O(relation) by the last page).
        exclude: Arc<Vec<String>>,
    },
    /// Fetch one attribute value for one key (paper: injected retrieval
    /// node before selections/joins/projections).
    FetchAttr {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key value identifying the tuple.
        key: String,
        /// Attribute to retrieve.
        attribute: String,
    },
    /// Boolean membership check (paper: selection operator prompt, "Has
    /// city c.name more than 1M population?").
    CheckFilter {
        /// Relation name.
        relation: String,
        /// Key attribute label.
        key_attr: String,
        /// Key value identifying the tuple.
        key: String,
        /// Condition to check.
        condition: Condition,
    },
}

// ---------------------------------------------------------------------
// Rendering (used by galois-core's prompt generator)
// ---------------------------------------------------------------------

/// Renders the question line of a [`TaskIntent`] (without the few-shot
/// preamble; that is model-specific and added by the prompt builder).
pub fn render_task(intent: &TaskIntent) -> String {
    match intent {
        TaskIntent::ListKeys {
            relation,
            key_attr,
            condition,
            exclude,
        } => {
            let cond = condition
                .as_ref()
                .map(|c| format!(" whose {}", c.render()))
                .unwrap_or_default();
            if exclude.is_empty() {
                format!(
                    "List the {key_attr} of every {relation}{cond}. \
                     Answer with a comma-separated list of values only."
                )
            } else {
                format!(
                    "List the {key_attr} of every {relation}{cond}, excluding: {}. \
                     Answer with a comma-separated list of new values only, \
                     or say \"No more results\".",
                    exclude.join("; ")
                )
            }
        }
        TaskIntent::FetchAttr {
            relation,
            key_attr,
            key,
            attribute,
        } => format!(
            "For the {relation} identified by {key_attr} '{key}', what is its {attribute}? \
             Answer with the value only, or \"Unknown\"."
        ),
        TaskIntent::CheckFilter {
            relation,
            key_attr,
            key,
            condition,
        } => format!(
            "For the {relation} identified by {key_attr} '{key}', is its {} {}? \
             Answer \"Yes\" or \"No\".",
            condition.attribute,
            condition.render_phrase(),
        ),
    }
}

// ---------------------------------------------------------------------
// Parsing (used by the simulated LLM)
// ---------------------------------------------------------------------

/// Extracts the final question line from a full prompt (drops the few-shot
/// preamble: the question is the last `Q:`-prefixed line, or the whole text
/// when no marker is present).
pub fn question_line(prompt: &str) -> &str {
    match prompt.rfind("Q: ") {
        Some(i) => {
            let rest = &prompt[i + 3..];
            match rest.find("\nA:") {
                Some(j) => rest[..j].trim(),
                None => rest.trim(),
            }
        }
        None => prompt.trim(),
    }
}

/// Attempts to decode an operator prompt into a [`TaskIntent`].
pub fn parse_task(prompt: &str) -> Option<TaskIntent> {
    let q = question_line(prompt);
    parse_list_keys(q)
        .or_else(|| parse_fetch_attr(q))
        .or_else(|| parse_check_filter(q))
}

fn parse_list_keys(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("List the ")?;
    let (head, tail) = rest.split_once(" of every ")?;
    let key_attr = head.trim().to_string();
    // tail: `<relation>[ whose <cond>][, excluding: …]. Answer with …`.
    // The "Answer with" marker is mandatory: it is what distinguishes an
    // operator prompt from an NL question that also starts with "List
    // the … of every …" (those go through the QA path instead).
    let (body, _) = tail.split_once(". Answer with")?;
    let body = body.trim();
    let (body, exclude) = match body.split_once(", excluding: ") {
        Some((b, ex)) => (
            b,
            Arc::new(
                ex.split("; ")
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            ),
        ),
        None => (body, Arc::new(Vec::new())),
    };
    let (relation, condition) = match body.split_once(" whose ") {
        Some((r, c)) => (r.trim().to_string(), Some(Condition::parse(c)?)),
        None => (body.trim().to_string(), None),
    };
    if relation.is_empty() || key_attr.is_empty() {
        return None;
    }
    Some(TaskIntent::ListKeys {
        relation,
        key_attr,
        condition,
        exclude,
    })
}

fn parse_fetch_attr(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For the ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" '")?;
    let (key, rest) = rest.split_once("', what is its ")?;
    let attribute = rest.split('?').next()?.trim().to_string();
    Some(TaskIntent::FetchAttr {
        relation: relation.trim().to_string(),
        key_attr: key_attr.trim().to_string(),
        key: key.to_string(),
        attribute,
    })
}

fn parse_check_filter(q: &str) -> Option<TaskIntent> {
    let rest = q.strip_prefix("For the ")?;
    let (relation, rest) = rest.split_once(" identified by ")?;
    let (key_attr, rest) = rest.split_once(" '")?;
    let (key, rest) = rest.split_once("', is its ")?;
    let question = rest.split("? Answer").next()?;
    // question = `<attribute> <phrase>`; the attribute is the first token
    // run until a known phrase start. Try longest attribute first.
    let words: Vec<&str> = question.split(' ').collect();
    for split in (1..words.len()).rev() {
        let attribute = words[..split].join(" ");
        let phrase = words[split..].join(" ");
        if let Some(mut c) = Condition::parse_phrase(&phrase) {
            c.attribute = attribute;
            return Some(TaskIntent::CheckFilter {
                relation: relation.trim().to_string(),
                key_attr: key_attr.trim().to_string(),
                key: key.to_string(),
                condition: c,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(attr: &str, op: CmpOp, values: Vec<PromptValue>) -> Condition {
        Condition {
            attribute: attr.to_string(),
            op,
            values,
        }
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            PromptValue::Text("Rome".into()),
            PromptValue::Number(1000000.0),
            PromptValue::Number(2.5),
        ] {
            assert_eq!(PromptValue::parse(&v.to_string()), Some(v));
        }
    }

    #[test]
    fn condition_phrases_roundtrip() {
        let cases = vec![
            cond("population", CmpOp::Gt, vec![PromptValue::Number(1e6)]),
            cond("name", CmpOp::Eq, vec![PromptValue::Text("Rome".into())]),
            cond(
                "population",
                CmpOp::Between,
                vec![PromptValue::Number(10.0), PromptValue::Number(20.0)],
            ),
            cond(
                "country",
                CmpOp::In,
                vec![
                    PromptValue::Text("Italy".into()),
                    PromptValue::Text("France".into()),
                ],
            ),
            cond("name", CmpOp::Like, vec![PromptValue::Text("R%".into())]),
            cond("mayor", CmpOp::IsNull, vec![]),
            cond("mayor", CmpOp::IsNotNull, vec![]),
            cond("elevation", CmpOp::LtEq, vec![PromptValue::Number(100.0)]),
        ];
        for c in cases {
            let text = c.render();
            let parsed = Condition::parse(&text).unwrap_or_else(|| panic!("parse {text}"));
            assert_eq!(parsed, c, "{text}");
        }
    }

    #[test]
    fn task_list_keys_roundtrip() {
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: Some(cond(
                "population",
                CmpOp::Gt,
                vec![PromptValue::Number(1e6)],
            )),
            exclude: std::sync::Arc::new(vec![]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_list_keys_with_exclusions_roundtrip() {
        let t = TaskIntent::ListKeys {
            relation: "city".into(),
            key_attr: "name".into(),
            condition: None,
            exclude: std::sync::Arc::new(vec!["Rome".into(), "Paris".into()]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_fetch_attr_roundtrip() {
        let t = TaskIntent::FetchAttr {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "Rome".into(),
            attribute: "population".into(),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn task_check_filter_roundtrip() {
        let t = TaskIntent::CheckFilter {
            relation: "city".into(),
            key_attr: "name".into(),
            key: "New York City".into(),
            condition: cond("population", CmpOp::GtEq, vec![PromptValue::Number(1e6)]),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn multi_word_attribute_in_filter() {
        let t = TaskIntent::CheckFilter {
            relation: "airport".into(),
            key_attr: "code".into(),
            key: "JFK".into(),
            condition: cond(
                "yearly passenger count",
                CmpOp::Gt,
                vec![PromptValue::Number(1e7)],
            ),
        };
        assert_eq!(parse_task(&render_task(&t)), Some(t));
    }

    #[test]
    fn question_line_extraction() {
        let prompt = "I am a bot.\nQ: What is 1+1?\nA: 2.\nQ: List the name of every city. \
                      Answer with a comma-separated list of values only.\nA:";
        assert!(question_line(prompt).starts_with("List the name"));
        assert_eq!(question_line("bare text"), "bare text");
    }

    #[test]
    fn garbage_does_not_parse_or_panic() {
        assert_eq!(parse_task("tell me a joke"), None);
        assert_eq!(parse_task(""), None);
        assert_eq!(parse_task("List the of every . Answer with"), None);
    }
}
