//! Property tests on the prompt protocol: rendering and parsing must be
//! exact inverses for arbitrary well-formed intents, and the parsers must
//! be total on arbitrary text.

use galois_llm::intent::{
    parse_task, render_task, split_batched_answer, CmpOp, Condition, PromptValue, TaskIntent,
};
use galois_llm::nlq::{
    parse_question, render_question, AggIntent, AggKind, JoinIntent, QueryIntent,
};
use proptest::prelude::*;

/// Identifier-ish words safe inside the templates (no protocol markers).
fn word() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,10}".prop_filter("no reserved words", |s| {
        // Words that collide with template scaffolding.
        let lower = s.to_ascii_lowercase();
        !["is", "of", "every", "whose", "and", "its", "the", "exist"].contains(&lower.as_str())
    })
}

/// Batch keys: arbitrary-ish surface strings *including* `:`/`,`/`-` and
/// even a mid-line `Q: ` (the question marker is line-anchored, so key
/// content cannot hijack it), excluding only surrounding whitespace —
/// keys are normalised before batching.
fn batch_key() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9][a-zA-Z0-9 :,.-]{0,13}",
        "[a-zA-Z0-9]{0,4}Q: [a-zA-Z0-9]{1,6}",
    ]
    .prop_filter("trimmed", |s| s.trim() == s)
}

fn prompt_value() -> impl Strategy<Value = PromptValue> {
    prop_oneof![
        "[a-zA-Z0-9 ]{1,12}"
            .prop_map(|s| PromptValue::Text(s.trim().to_string()))
            .prop_filter("non-empty after trim", |v| match v {
                PromptValue::Text(s) => !s.is_empty() && s.parse::<f64>().is_err(),
                _ => true,
            }),
        (-1_000_000_000i64..1_000_000_000).prop_map(|n| PromptValue::Number(n as f64)),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    (word(), prompt_value(), prompt_value(), 0u8..9).prop_map(|(attr, v1, v2, op)| {
        let (op, values) = match op {
            0 => (CmpOp::Eq, vec![v1]),
            1 => (CmpOp::NotEq, vec![v1]),
            2 => (CmpOp::Gt, vec![v1]),
            3 => (CmpOp::GtEq, vec![v1]),
            4 => (CmpOp::Lt, vec![v1]),
            5 => (CmpOp::LtEq, vec![v1]),
            6 => (CmpOp::Between, vec![v1, v2]),
            7 => (CmpOp::In, vec![v1, v2]),
            _ => (CmpOp::IsNull, vec![]),
        };
        Condition {
            attribute: attr,
            op,
            values,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn task_intents_roundtrip(
        relation in word(),
        key_attr in word(),
        key in "[a-zA-Z][a-zA-Z0-9 ]{0,14}",
        attribute in word(),
        cond in condition(),
        exclude in prop::collection::vec("[a-zA-Z][a-zA-Z0-9 ]{0,10}", 0..4),
        which in 0u8..3,
    ) {
        let key = key.trim().to_string();
        prop_assume!(!key.is_empty());
        let exclude: Vec<String> = exclude
            .iter()
            .map(|e| e.trim().to_string())
            .filter(|e| !e.is_empty())
            .collect();
        let task = match which {
            0 => TaskIntent::ListKeys {
                relation,
                key_attr,
                condition: Some(cond),
                exclude: exclude.into(),
            },
            1 => TaskIntent::FetchAttr {
                relation,
                key_attr,
                key,
                attribute,
            },
            _ => TaskIntent::CheckFilter {
                relation,
                key_attr,
                key,
                condition: cond,
            },
        };
        let rendered = render_task(&task);
        prop_assert_eq!(parse_task(&rendered), Some(task), "{}", rendered);
    }

    #[test]
    fn questions_roundtrip(
        relation in word(),
        attrs in prop::collection::vec(word(), 1..3),
        cond in proptest::option::of(condition()),
        shape in 0u8..4,
        agg_attr in word(),
        group in word(),
        via in word(),
        related in word(),
    ) {
        let q = match shape {
            0 => QueryIntent {
                relation,
                select: attrs,
                condition: cond,
                join: None,
                aggregate: None,
            },
            1 => QueryIntent {
                relation,
                select: attrs,
                condition: cond,
                join: Some(JoinIntent {
                    via_attribute: via,
                    related_attribute: related,
                }),
                aggregate: None,
            },
            2 => QueryIntent {
                relation,
                select: vec![],
                condition: cond,
                join: None,
                aggregate: Some(AggIntent {
                    kind: AggKind::Count,
                    attribute: None,
                    group_by: if group.len().is_multiple_of(2) { Some(group) } else { None },
                }),
            },
            _ => QueryIntent {
                relation,
                select: vec![],
                condition: cond,
                join: None,
                aggregate: Some(AggIntent {
                    kind: AggKind::Avg,
                    attribute: Some(agg_attr),
                    group_by: if group.len().is_multiple_of(2) { Some(group) } else { None },
                }),
            },
        };
        let rendered = render_question(&q);
        prop_assert_eq!(parse_question(&rendered), Some(q), "{}", rendered);
    }

    /// Every batched intent round-trips: arbitrary key sets, including
    /// keys containing `:` and commas, survive render → parse exactly.
    #[test]
    fn batched_task_intents_roundtrip(
        relation in word(),
        key_attr in word(),
        attribute in word(),
        cond in condition(),
        keys in prop::collection::vec(batch_key(), 1..12),
        which in 0u8..2,
    ) {
        let task = match which {
            0 => TaskIntent::FetchAttrBatch {
                relation,
                key_attr,
                keys,
                attribute,
            },
            _ => TaskIntent::FilterKeysBatch {
                relation,
                key_attr,
                keys,
                condition: cond,
            },
        };
        let rendered = render_task(&task);
        prop_assert_eq!(parse_task(&rendered), Some(task), "{}", rendered);
    }

    /// A full `key: payload` answer block in key order splits back into
    /// exactly the payloads — even for keys containing `:`, where a naive
    /// first-colon split would misparse. (In key order, key *i* always
    /// consumes line *i*: lines 0..i are already consumed by induction and
    /// line *i* carries key *i*'s prefix by construction. Payloads here
    /// are colon-free so no `"{key}: {payload}"` line can collide with a
    /// longer key of the batch — with such collisions the splitter
    /// deliberately prefers `None`/longest-key over guessing.)
    #[test]
    fn batched_answers_split_exactly(
        keys in prop::collection::vec(batch_key(), 1..10),
        payloads in prop::collection::vec(
            "[a-zA-Z0-9][a-zA-Z0-9 .]{0,10}".prop_filter("trimmed", |p| p.trim() == p),
            1..10,
        ),
    ) {
        let n = keys.len().min(payloads.len());
        let (keys, payloads) = (&keys[..n], &payloads[..n]);
        let answer: String = keys
            .iter()
            .zip(payloads)
            .map(|(k, p)| format!("{k}: {p}"))
            .collect::<Vec<_>>()
            .join("\n");
        let split = split_batched_answer(&answer, keys);
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(split[i].as_deref(), Some(payload.as_str()),
                "key {:?} in\n{}", &keys[i], answer);
        }
    }

    #[test]
    fn parsers_are_total(input in "[ -~]{0,120}") {
        let _ = parse_task(&input);
        let _ = parse_question(&input);
        let _ = Condition::parse(&input);
        let _ = PromptValue::parse(&input);
    }
}
