//! Property tests on the prompt protocol: rendering and parsing must be
//! exact inverses for arbitrary well-formed intents, and the parsers must
//! be total on arbitrary text.

use galois_llm::intent::{
    parse_task, parse_task_outcome, render_task, split_batched_answer, split_grid_answer, CmpOp,
    Condition, ParseOutcome, PromptValue, TaskIntent,
};
use galois_llm::nlq::{
    parse_question, render_question, AggIntent, AggKind, JoinIntent, QueryIntent,
};
use proptest::prelude::*;

/// Identifier-ish words safe inside the templates (no protocol markers).
fn word() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,10}".prop_filter("no reserved words", |s| {
        // Words that collide with template scaffolding.
        let lower = s.to_ascii_lowercase();
        !["is", "of", "every", "whose", "and", "its", "the", "exist"].contains(&lower.as_str())
    })
}

/// Batch keys: arbitrary-ish surface strings *including* `:`/`,`/`-` and
/// even a mid-line `Q: ` (the question marker is line-anchored, so key
/// content cannot hijack it), excluding only surrounding whitespace —
/// keys are normalised before batching.
fn batch_key() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9][a-zA-Z0-9 :,.-]{0,13}",
        "[a-zA-Z0-9]{0,4}Q: [a-zA-Z0-9]{1,6}",
    ]
    .prop_filter("trimmed", |s| s.trim() == s)
}

fn prompt_value() -> impl Strategy<Value = PromptValue> {
    prop_oneof![
        "[a-zA-Z0-9 ]{1,12}"
            .prop_map(|s| PromptValue::Text(s.trim().to_string()))
            .prop_filter("non-empty after trim", |v| match v {
                PromptValue::Text(s) => !s.is_empty() && s.parse::<f64>().is_err(),
                _ => true,
            }),
        (-1_000_000_000i64..1_000_000_000).prop_map(|n| PromptValue::Number(n as f64)),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    (word(), prompt_value(), prompt_value(), 0u8..9).prop_map(|(attr, v1, v2, op)| {
        let (op, values) = match op {
            0 => (CmpOp::Eq, vec![v1]),
            1 => (CmpOp::NotEq, vec![v1]),
            2 => (CmpOp::Gt, vec![v1]),
            3 => (CmpOp::GtEq, vec![v1]),
            4 => (CmpOp::Lt, vec![v1]),
            5 => (CmpOp::LtEq, vec![v1]),
            6 => (CmpOp::Between, vec![v1, v2]),
            7 => (CmpOp::In, vec![v1, v2]),
            _ => (CmpOp::IsNull, vec![]),
        };
        Condition {
            attribute: attr,
            op,
            values,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn task_intents_roundtrip(
        relation in word(),
        key_attr in word(),
        key in "[a-zA-Z][a-zA-Z0-9 ]{0,14}",
        attribute in word(),
        cond in condition(),
        exclude in prop::collection::vec("[a-zA-Z][a-zA-Z0-9 ]{0,10}", 0..4),
        which in 0u8..3,
    ) {
        let key = key.trim().to_string();
        prop_assume!(!key.is_empty());
        let exclude: Vec<String> = exclude
            .iter()
            .map(|e| e.trim().to_string())
            .filter(|e| !e.is_empty())
            .collect();
        let task = match which {
            0 => TaskIntent::ListKeys {
                relation,
                key_attr,
                condition: Some(cond),
                exclude: exclude.into(),
            },
            1 => TaskIntent::FetchAttr {
                relation,
                key_attr,
                key,
                attribute,
            },
            _ => TaskIntent::CheckFilter {
                relation,
                key_attr,
                key,
                condition: cond,
            },
        };
        let rendered = render_task(&task);
        prop_assert_eq!(parse_task(&rendered), Some(task), "{}", rendered);
    }

    #[test]
    fn questions_roundtrip(
        relation in word(),
        attrs in prop::collection::vec(word(), 1..3),
        cond in proptest::option::of(condition()),
        shape in 0u8..4,
        agg_attr in word(),
        group in word(),
        via in word(),
        related in word(),
    ) {
        let q = match shape {
            0 => QueryIntent {
                relation,
                select: attrs,
                condition: cond,
                join: None,
                aggregate: None,
            },
            1 => QueryIntent {
                relation,
                select: attrs,
                condition: cond,
                join: Some(JoinIntent {
                    via_attribute: via,
                    related_attribute: related,
                }),
                aggregate: None,
            },
            2 => QueryIntent {
                relation,
                select: vec![],
                condition: cond,
                join: None,
                aggregate: Some(AggIntent {
                    kind: AggKind::Count,
                    attribute: None,
                    group_by: if group.len().is_multiple_of(2) { Some(group) } else { None },
                }),
            },
            _ => QueryIntent {
                relation,
                select: vec![],
                condition: cond,
                join: None,
                aggregate: Some(AggIntent {
                    kind: AggKind::Avg,
                    attribute: Some(agg_attr),
                    group_by: if group.len().is_multiple_of(2) { Some(group) } else { None },
                }),
            },
        };
        let rendered = render_question(&q);
        prop_assert_eq!(parse_question(&rendered), Some(q), "{}", rendered);
    }

    /// Every batched intent round-trips: arbitrary key sets, including
    /// keys containing `:` and commas, survive render → parse exactly.
    #[test]
    fn batched_task_intents_roundtrip(
        relation in word(),
        key_attr in word(),
        attribute in word(),
        cond in condition(),
        keys in prop::collection::vec(batch_key(), 1..12),
        which in 0u8..2,
    ) {
        let task = match which {
            0 => TaskIntent::FetchAttrBatch {
                relation,
                key_attr,
                keys,
                attribute,
            },
            _ => TaskIntent::FilterKeysBatch {
                relation,
                key_attr,
                keys,
                condition: cond,
            },
        };
        let rendered = render_task(&task);
        prop_assert_eq!(parse_task(&rendered), Some(task), "{}", rendered);
    }

    /// A full `key: payload` answer block in key order splits back into
    /// exactly the payloads — even for keys containing `:`, where a naive
    /// first-colon split would misparse. (In key order, key *i* always
    /// consumes line *i*: lines 0..i are already consumed by induction and
    /// line *i* carries key *i*'s prefix by construction. Payloads here
    /// are colon-free so no `"{key}: {payload}"` line can collide with a
    /// longer key of the batch — with such collisions the splitter
    /// deliberately prefers `None`/longest-key over guessing.)
    #[test]
    fn batched_answers_split_exactly(
        keys in prop::collection::vec(batch_key(), 1..10),
        payloads in prop::collection::vec(
            "[a-zA-Z0-9][a-zA-Z0-9 .]{0,10}".prop_filter("trimmed", |p| p.trim() == p),
            1..10,
        ),
    ) {
        let n = keys.len().min(payloads.len());
        let (keys, payloads) = (&keys[..n], &payloads[..n]);
        let answer: String = keys
            .iter()
            .zip(payloads)
            .map(|(k, p)| format!("{k}: {p}"))
            .collect::<Vec<_>>()
            .join("\n");
        let split = split_batched_answer(&answer, keys);
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(split[i].as_deref(), Some(payload.as_str()),
                "key {:?} in\n{}", &keys[i], answer);
        }
    }

    #[test]
    fn parsers_are_total(input in "[ -~]{0,120}") {
        let _ = parse_task(&input);
        let _ = parse_task_outcome(&input);
        let _ = parse_question(&input);
        let _ = Condition::parse(&input);
        let _ = PromptValue::parse(&input);
    }

    /// Fault-injection hardening: a batched answer block with garbage
    /// lines interleaved between the real `key: value` lines must yield
    /// *exactly* the planted payload for every planted key, `None` for
    /// every unplanted key, and never a silently-wrong cell. Keys are
    /// uppercase-only and garbage lines never start with an uppercase
    /// letter, so no garbage line can own a key's prefix by construction.
    #[test]
    fn split_batched_answer_survives_interleaved_garbage(
        keys in prop::collection::vec("[A-Z]{1,8}", 1..8),
        garbage in prop::collection::vec("[a-z0-9 !#%&*+=?@~:.,-]{0,40}", 0..8),
        mask in any::<u32>(),
    ) {
        let mut keys = keys;
        keys.sort();
        keys.dedup();
        // Plant a payload for the keys selected by the mask bits.
        let planted: Vec<Option<String>> = keys
            .iter()
            .enumerate()
            .map(|(i, _)| (mask >> (i % 32)) & 1 == 1)
            .enumerate()
            .map(|(i, on)| on.then(|| format!("v{i}")))
            .collect();
        let mut lines: Vec<String> = Vec::new();
        let mut garbage_iter = garbage.iter();
        for (key, payload) in keys.iter().zip(&planted) {
            if let Some(g) = garbage_iter.next() {
                lines.push(g.clone());
            }
            if let Some(p) = payload {
                lines.push(format!("{key}: {p}"));
            }
        }
        lines.extend(garbage_iter.cloned());
        let answer = lines.join("\n");
        let split = split_batched_answer(&answer, &keys);
        for (i, expected) in planted.iter().enumerate() {
            prop_assert_eq!(&split[i], expected, "key {:?} in\n{}", &keys[i], answer);
        }
    }

    /// Same hardening for the grid splitter: garbage lines between real
    /// `key ⌁ attr: value` lines never corrupt a planted cell, and every
    /// unplanted cell stays `None` (→ fallback re-ask), never a guess.
    #[test]
    fn split_grid_answer_survives_interleaved_garbage(
        keys in prop::collection::vec("[A-Z]{1,6}", 1..5),
        attrs in prop::collection::vec("[a-z]{1,6}", 1..4),
        garbage in prop::collection::vec("[a-z0-9 !#%&*+=?@~:.,-]{0,40}", 0..8),
        mask in any::<u32>(),
    ) {
        let mut keys = keys;
        keys.sort();
        keys.dedup();
        let mut attrs = attrs;
        attrs.sort();
        attrs.dedup();
        let mut lines: Vec<String> = Vec::new();
        let mut garbage_iter = garbage.iter();
        let mut planted: Vec<Vec<Option<String>>> = Vec::new();
        for (ki, key) in keys.iter().enumerate() {
            let mut row = Vec::new();
            for (ai, attr) in attrs.iter().enumerate() {
                let bit = (ki * attrs.len() + ai) % 32;
                let cell = ((mask >> bit) & 1 == 1).then(|| format!("p{ki}x{ai}"));
                if let Some(g) = garbage_iter.next() {
                    lines.push(g.clone());
                }
                if let Some(p) = &cell {
                    lines.push(format!("{key} \u{2301} {attr}: {p}"));
                }
                row.push(cell);
            }
            planted.push(row);
        }
        lines.extend(garbage_iter.cloned());
        let answer = lines.join("\n");
        let split = split_grid_answer(&answer, &keys, &attrs);
        for (ki, row) in planted.iter().enumerate() {
            for (ai, expected) in row.iter().enumerate() {
                prop_assert_eq!(
                    &split[ki][ai], expected,
                    "cell {:?} × {:?} in\n{}", &keys[ki], &attrs[ai], answer
                );
            }
        }
    }

    /// The splitters are total on arbitrary noise — printable bytes,
    /// embedded newlines, stray grid separators, and a pathologically
    /// long line — and degrade to `None` cells rather than panicking.
    #[test]
    fn splitters_are_total_on_noise(
        noise in "[ -~\u{2301}\n]{0,160}",
        keys in prop::collection::vec("[A-Za-z0-9 :,.\u{2301}-]{0,12}", 0..6),
        attrs in prop::collection::vec("[a-z]{1,8}", 0..4),
        repeat in 1usize..60_000,
    ) {
        let huge = format!("{noise}{}", "x".repeat(repeat));
        for answer in [noise.as_str(), huge.as_str()] {
            let b = split_batched_answer(answer, &keys);
            prop_assert_eq!(b.len(), keys.len());
            let g = split_grid_answer(answer, &keys, &attrs);
            prop_assert_eq!(g.len(), keys.len());
            for row in &g {
                prop_assert_eq!(row.len(), attrs.len());
            }
        }
        // The task parser is likewise total on the same noise.
        let _ = parse_task_outcome(&huge);
    }

    /// A well-formed operator prompt whose tail was truncated mid-body is
    /// classified `Malformed` (an operator marker with a garbled body),
    /// never `Parsed` with wrong contents and never a panic.
    #[test]
    fn truncated_operator_prompts_classify_as_malformed(
        relation in word(),
        key_attr in word(),
        keys in prop::collection::vec(batch_key(), 1..6),
        attribute in word(),
        cut_permille in 0usize..1000,
    ) {
        let task = TaskIntent::FetchAttrBatch {
            relation,
            key_attr,
            keys,
            attribute,
        };
        let rendered = render_task(&task);
        let mut cut = rendered.len() * cut_permille / 1000;
        while !rendered.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &rendered[..cut];
        match parse_task_outcome(truncated) {
            // Very short prefixes lose the marker entirely; prefixes that
            // keep the whole body still parse. Neither may misdecode: a
            // parse must re-render to exactly the text it was handed
            // (modulo the surrounding whitespace the parser trims).
            ParseOutcome::Parsed(t) => {
                let re_rendered = render_task(&t);
                prop_assert_eq!(re_rendered.as_str(), truncated.trim_end());
            }
            ParseOutcome::Malformed(_) | ParseOutcome::Unrecognized => {}
        }
    }
}
