//! Recursive-descent parser for the Galois SQL dialect.
//!
//! Grammar (simplified):
//!
//! ```text
//! select     := SELECT [DISTINCT] items FROM table (',' table)* join*
//!               [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//!               [ORDER BY order (',' order)*] [LIMIT int] [';']
//! join       := [INNER | LEFT [OUTER]] JOIN table ON expr
//! table      := [(LLM | DB) '.'] ident [[AS] ident]
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | predicate
//! predicate  := additive [comparison | IS | IN | BETWEEN | LIKE suffix]
//! additive   := multiplic (('+'|'-') multiplic)*
//! multiplic  := unary (('*'|'/'|'%') unary)*
//! unary      := '-' unary | primary
//! primary    := literal | func_call | qualified_name | '(' expr ')'
//! ```
//!
//! Operator precedence matches the canonical printer in [`crate::ast`], so
//! `parse(stmt.to_string()) == stmt` for every AST the printer emits — a
//! property the test-suite checks with `proptest`.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a single SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a statement and asserts it is a plain SELECT; convenience for
/// callers that want the select directly (an `EXPLAIN` is rejected, since
/// the caller asked for something to execute).
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        Statement::Explain(_) => {
            // The statement parsed as EXPLAIN, so the keyword is the first
            // token: point the span at it, past any leading whitespace.
            let start = sql.len() - sql.trim_start().len();
            Err(SqlError::new(
                "expected a SELECT statement, found EXPLAIN",
                crate::error::Span::new(start, start + "EXPLAIN".len()),
            ))
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(msg, self.peek().span)
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kw.as_str(),
                self.peek_kind()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kind}, found {}", self.peek_kind())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        self.eat(&TokenKind::Semicolon);
        if self.peek_kind() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected trailing input: {}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_keyword(Keyword::Explain) {
            if !self.peek().is_keyword(Keyword::Select) {
                return Err(self.error_here("expected SELECT after EXPLAIN"));
            }
            return Ok(Statement::Explain(self.parse_select()?));
        }
        if self.peek().is_keyword(Keyword::Select) {
            Ok(Statement::Select(self.parse_select()?))
        } else {
            Err(self.error_here("expected SELECT or EXPLAIN"))
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);

        let mut items = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }

        let mut from = Vec::new();
        let mut joins = Vec::new();
        if self.eat_keyword(Keyword::From) {
            from.push(self.parse_table_ref()?);
            loop {
                if self.eat(&TokenKind::Comma) {
                    from.push(self.parse_table_ref()?);
                } else if let Some(join) = self.try_parse_join()? {
                    joins.push(join);
                } else {
                    break;
                }
            }
        }

        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }

        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            order_by.push(self.parse_order_item()?);
            while self.eat(&TokenKind::Comma) {
                order_by.push(self.parse_order_item()?);
            }
        }

        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.peek_kind().clone() {
                TokenKind::Integer(v) if v >= 0 => {
                    self.advance();
                    Some(v as u64)
                }
                other => {
                    return Err(self.error_here(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )));
                }
            }
        } else {
            None
        };

        let offset = if self.eat_keyword(Keyword::Offset) {
            if limit.is_none() {
                return Err(self.error_here("OFFSET requires a preceding LIMIT".to_string()));
            }
            match self.peek_kind().clone() {
                TokenKind::Integer(v) if v >= 0 => {
                    self.advance();
                    Some(v as u64)
                }
                other => {
                    return Err(self.error_here(format!(
                        "OFFSET expects a non-negative integer, found {other}"
                    )));
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*` needs two tokens of lookahead before falling back to a
        // general expression.
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let explicit_as = self.eat_keyword(Keyword::As);
        let alias = if explicit_as || matches!(self.peek_kind(), TokenKind::Ident(_)) {
            // Bare alias (`SELECT salary s`) or explicit `AS s`.
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let first = self.expect_ident()?;
        let (source, name) = if self.peek_kind() == &TokenKind::Dot {
            let source = match first.to_ascii_uppercase().as_str() {
                "LLM" => Some(SourceQualifier::Llm),
                "DB" => Some(SourceQualifier::Db),
                other => {
                    return Err(self.error_here(format!(
                        "unknown source qualifier '{other}' (expected LLM or DB)"
                    )));
                }
            };
            self.advance(); // the dot
            (source, self.expect_ident()?)
        } else {
            (None, first)
        };
        let explicit_as = self.eat_keyword(Keyword::As);
        let alias = if explicit_as
            || matches!(
                self.peek_kind(),
                TokenKind::Ident(_) | TokenKind::QuotedIdent(_)
            ) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef {
            source,
            name,
            alias,
        })
    }

    fn try_parse_join(&mut self) -> Result<Option<Join>> {
        let join_type = if self.peek().is_keyword(Keyword::Join) {
            self.advance();
            JoinType::Inner
        } else if self.peek().is_keyword(Keyword::Inner) {
            self.advance();
            self.expect_keyword(Keyword::Join)?;
            JoinType::Inner
        } else if self.peek().is_keyword(Keyword::Left) {
            self.advance();
            self.eat_keyword(Keyword::Outer);
            self.expect_keyword(Keyword::Join)?;
            JoinType::LeftOuter
        } else {
            return Ok(None);
        };
        let table = self.parse_table_ref()?;
        self.expect_keyword(Keyword::On)?;
        let on = self.parse_expr()?;
        Ok(Some(Join {
            join_type,
            table,
            on,
        }))
    }

    fn parse_order_item(&mut self) -> Result<OrderItem> {
        let expr = self.parse_expr()?;
        let direction = if self.eat_keyword(Keyword::Desc) {
            SortDirection::Desc
        } else {
            self.eat_keyword(Keyword::Asc);
            SortDirection::Asc
        };
        Ok(OrderItem { expr, direction })
    }

    /// Entry for expression parsing.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        let cmp = match self.peek_kind() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = cmp {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }

        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let negated = self.eat_keyword(Keyword::Not);
        if self.eat_keyword(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation of numeric literals so `-3` is a literal, which
            // keeps canonical printing stable.
            return Ok(match inner {
                Expr::Literal(Literal::Integer(v)) => Expr::Literal(Literal::Integer(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Integer(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Integer(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => self.parse_name_or_call(),
            other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }

    fn parse_name_or_call(&mut self) -> Result<Expr> {
        let name = self.expect_ident()?;
        if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            let distinct = self.eat_keyword(Keyword::Distinct);
            let args = if self.eat(&TokenKind::Star) {
                FunctionArgs::Star
            } else if self.peek_kind() == &TokenKind::RParen {
                FunctionArgs::Exprs(Vec::new())
            } else {
                let mut exprs = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    exprs.push(self.parse_expr()?);
                }
                FunctionArgs::Exprs(exprs)
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name: name.to_ascii_uppercase(),
                distinct,
                args,
            });
        }
        if self.peek_kind() == &TokenKind::Dot {
            self.advance();
            let column = self.expect_ident()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(name),
                column,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            table: None,
            column: name,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
            .to_string()
    }

    #[test]
    fn parse_paper_query_q() {
        // The hybrid query from the paper's introduction.
        let sql = "SELECT c.GDP, AVG(e.salary) \
                   FROM LLM.country c, DB.Employees e \
                   WHERE c.code = e.countryCode \
                   GROUP BY e.countryCode";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].source, Some(SourceQualifier::Llm));
        assert_eq!(s.from[1].source, Some(SourceQualifier::Db));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.is_aggregate_query());
    }

    #[test]
    fn parse_paper_query_city_mayor() {
        let sql = "SELECT c.cityName, cm.birthDate \
                   FROM city c, cityMayor cm \
                   WHERE c.mayor = cm.name AND cm.electionYear = 2019";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert!(!s.is_aggregate_query());
    }

    #[test]
    fn parse_limit_with_offset() {
        let Statement::Select(s) = parse("SELECT name FROM city LIMIT 5 OFFSET 2").unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
        assert_eq!(s.to_string(), "SELECT name FROM city LIMIT 5 OFFSET 2");
    }

    #[test]
    fn offset_without_limit_is_rejected() {
        let err = parse("SELECT name FROM city OFFSET 2").unwrap_err();
        assert!(err.to_string().contains("OFFSET"), "{err}");
    }

    #[test]
    fn parse_explicit_join() {
        let sql = "SELECT a.x FROM t1 a JOIN t2 b ON a.id = b.id LEFT JOIN t3 c ON b.id = c.id";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].join_type, JoinType::Inner);
        assert_eq!(s.joins[1].join_type, JoinType::LeftOuter);
    }

    #[test]
    fn parse_aggregates_and_having() {
        let sql = "SELECT country, COUNT(*), AVG(population) FROM city \
                   GROUP BY country HAVING COUNT(*) > 3 ORDER BY AVG(population) DESC LIMIT 5";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("expected SELECT")
        };
        assert!(s.is_aggregate_query());
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.order_by[0].direction, SortDirection::Desc);
    }

    #[test]
    fn parse_predicates() {
        let s = parse_select(
            "SELECT name FROM city WHERE population BETWEEN 1 AND 5 \
             AND country IN ('Italy', 'France') AND name LIKE 'R%' AND mayor IS NOT NULL",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        let printed = w.to_string();
        assert!(printed.contains("BETWEEN 1 AND 5"));
        assert!(printed.contains("IN ('Italy', 'France')"));
        assert!(printed.contains("LIKE 'R%'"));
        assert!(printed.contains("IS NOT NULL"));
    }

    #[test]
    fn parse_not_variants() {
        roundtrip("SELECT x FROM t WHERE a NOT IN (1, 2)");
        roundtrip("SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2");
        roundtrip("SELECT x FROM t WHERE a NOT LIKE 'x%'");
        roundtrip("SELECT x FROM t WHERE NOT a = 1");
    }

    #[test]
    fn parse_select_without_from() {
        let Statement::Select(s) = parse("SELECT 1 + 2 AS three").unwrap() else {
            panic!("expected SELECT")
        };
        assert!(s.from.is_empty());
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("three")),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parse_wildcards() {
        let Statement::Select(s) = parse("SELECT *, c.* FROM city c").unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(s.items[0], SelectItem::Wildcard);
        assert_eq!(s.items[1], SelectItem::QualifiedWildcard("c".into()));
    }

    #[test]
    fn parse_count_distinct() {
        let Statement::Select(s) = parse("SELECT COUNT(DISTINCT country) FROM city").unwrap()
        else {
            panic!("expected SELECT")
        };
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Function { name, distinct, .. },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert!(*distinct);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literal_is_folded() {
        let Statement::Select(s) = parse("SELECT -5, -2.5").unwrap() else {
            panic!("expected SELECT")
        };
        assert_eq!(
            s.items[0],
            SelectItem::Expr {
                expr: Expr::Literal(Literal::Integer(-5)),
                alias: None
            }
        );
    }

    #[test]
    fn canonical_roundtrip_examples() {
        for sql in [
            "SELECT name FROM city",
            "SELECT DISTINCT c.name FROM city c WHERE c.population > 1000000",
            "SELECT c.GDP, AVG(e.salary) FROM LLM.country c, DB.Employees e WHERE c.code = e.countryCode GROUP BY e.countryCode",
            "SELECT country, COUNT(*) FROM airport GROUP BY country HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC LIMIT 10",
            "SELECT a + b * c FROM t",
            "SELECT (a + b) * c FROM t",
            "SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2",
        ] {
            let once = roundtrip(sql);
            let twice = roundtrip(&once);
            assert_eq!(once, twice, "printer not a fixed point for {sql}");
        }
    }

    #[test]
    fn errors_are_reported_with_position() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(err.span.start >= 7, "span {:?}", err.span);
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra garbage !!").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unknown_source_qualifier_is_rejected() {
        let err = parse("SELECT x FROM WEB.page").unwrap_err();
        assert!(err.message.contains("source qualifier"));
    }

    #[test]
    fn explain_select_parses() {
        let stmt = parse("EXPLAIN SELECT name FROM city WHERE population > 1000000").unwrap();
        assert!(stmt.is_explain());
        assert_eq!(stmt.select().from[0].name, "city");
        // The canonical printer round-trips through the parser.
        let printed = stmt.to_string();
        assert!(printed.starts_with("EXPLAIN SELECT"));
        assert_eq!(parse(&printed).unwrap(), stmt);
    }

    #[test]
    fn explain_is_case_insensitive_and_accepts_semicolon() {
        assert!(parse("explain select 1;").unwrap().is_explain());
    }

    #[test]
    fn explain_without_select_is_rejected() {
        let err = parse("EXPLAIN 1 + 2").unwrap_err();
        assert!(err.message.contains("after EXPLAIN"), "{err}");
        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN EXPLAIN SELECT 1").is_err());
    }

    #[test]
    fn parse_select_rejects_explain() {
        let err = parse_select("EXPLAIN SELECT 1").unwrap_err();
        assert!(err.message.contains("EXPLAIN"), "{err}");
    }

    #[test]
    fn semicolon_is_accepted() {
        assert!(parse("SELECT 1;").is_ok());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT 1; SELECT 2").is_err());
    }
}
