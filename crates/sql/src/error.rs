//! Error types for lexing and parsing.

use std::fmt;

/// A byte-offset range into the original SQL text.
///
/// Spans are half-open: `start..end`. They exist so error messages can point
/// at the offending fragment without keeping a reference to the input alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character of the fragment.
    pub start: usize,
    /// Byte offset one past the last character of the fragment.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extracts the spanned fragment from the original input.
    pub fn slice<'a>(&self, input: &'a str) -> &'a str {
        input.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while lexing or parsing a SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl SqlError {
    /// Creates an error with a message and location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_slice_extracts_fragment() {
        let s = "SELECT name";
        assert_eq!(Span::new(7, 11).slice(s), "name");
    }

    #[test]
    fn span_slice_out_of_bounds_is_empty() {
        assert_eq!(Span::new(5, 99).slice("abc"), "");
    }

    #[test]
    fn error_display_mentions_offset() {
        let e = SqlError::new("unexpected token", Span::new(4, 6));
        assert!(e.to_string().contains("byte 4"));
        assert!(e.to_string().contains("unexpected token"));
    }
}
