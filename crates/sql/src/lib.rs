//! # galois-sql
//!
//! SQL front-end for the Galois system (["Querying Large Language Models
//! with SQL"](https://arxiv.org/abs/2304.00472), EDBT 2024): a hand-written
//! lexer, an AST with a canonical pretty-printer, and a recursive-descent
//! parser for the SPJA dialect the paper executes against LLMs.
//!
//! The dialect supports `SELECT [DISTINCT] … FROM … [JOIN … ON …] WHERE …
//! GROUP BY … HAVING … ORDER BY … LIMIT …` with arithmetic, comparisons,
//! `LIKE`/`IN`/`BETWEEN`/`IS NULL`, the five standard aggregates, the
//! hybrid-source qualifiers `LLM.table` / `DB.table` from the paper's
//! introduction, and `EXPLAIN <query>` for inspecting the chosen plan
//! without executing it.
//!
//! ```
//! use galois_sql::{parse, parse_select};
//!
//! let q = parse_select("SELECT c.name FROM city c WHERE c.population > 1000000").unwrap();
//! assert_eq!(q.from[0].binding(), "c");
//!
//! let stmt = parse("EXPLAIN SELECT name FROM city").unwrap();
//! assert!(stmt.is_explain());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, ColumnRef, Expr, FunctionArgs, Join, JoinType, Literal, OrderItem, SelectItem,
    SelectStatement, SortDirection, SourceQualifier, Statement, TableRef, UnaryOp,
};
pub use error::{Result, Span, SqlError};
pub use parser::{parse, parse_select};
