//! Hand-written lexer for the Galois SQL dialect.
//!
//! The lexer converts SQL text into a flat [`Token`] stream. It handles:
//!
//! * keywords and identifiers (case-insensitive keyword matching),
//! * double-quoted identifiers (`"weird name"`),
//! * integer and float literals,
//! * single-quoted strings with `''` escaping,
//! * all operators and punctuation of the dialect,
//! * `--` line comments and `/* ... */` block comments.

use crate::error::{Result, Span, SqlError};
use crate::token::{Keyword, Token, TokenKind};

/// Streaming lexer over SQL text.
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input, appending a final [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(SqlError::new(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(start, start)));
        };

        let kind = match b {
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b',' => self.single(TokenKind::Comma),
            b'.' => self.single(TokenKind::Dot),
            b';' => self.single(TokenKind::Semicolon),
            b'+' => self.single(TokenKind::Plus),
            b'-' => self.single(TokenKind::Minus),
            b'*' => self.single(TokenKind::Star),
            b'/' => self.single(TokenKind::Slash),
            b'%' => self.single(TokenKind::Percent),
            b'=' => self.single(TokenKind::Eq),
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::LtEq),
                    Some(b'>') => self.single(TokenKind::NotEq),
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::GtEq),
                    _ => TokenKind::Gt,
                }
            }
            b'!' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::NotEq),
                    _ => {
                        return Err(SqlError::new(
                            "unexpected character '!'",
                            Span::new(start, self.pos),
                        ));
                    }
                }
            }
            b'\'' => self.lex_string(start)?,
            b'"' => self.lex_quoted_ident(start)?,
            b'0'..=b'9' => self.lex_number(start)?,
            b if b.is_ascii_alphabetic() || b == b'_' => self.lex_word(start),
            other => {
                return Err(SqlError::new(
                    format!("unexpected character '{}'", other as char),
                    Span::new(start, start + 1),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // SQL escapes a quote inside a string as ''.
                    if self.peek() == Some(b'\'') {
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::String(value));
                    }
                }
                Some(_) => {
                    // Recover the original (possibly multi-byte) character.
                    let ch_start = self.pos - 1;
                    let ch = self.input[ch_start..].chars().next().expect("in bounds");
                    value.push(ch);
                    self.pos = ch_start + ch.len_utf8();
                }
                None => {
                    return Err(SqlError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
    }

    fn lex_quoted_ident(&mut self, start: usize) -> Result<TokenKind> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let ident_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let ident = self.input[ident_start..self.pos].to_string();
                self.pos += 1;
                if ident.is_empty() {
                    return Err(SqlError::new(
                        "empty quoted identifier",
                        Span::new(start, self.pos),
                    ));
                }
                return Ok(TokenKind::QuotedIdent(ident));
            }
            self.pos += 1;
        }
        Err(SqlError::new(
            "unterminated quoted identifier",
            Span::new(start, self.pos),
        ))
    }

    fn lex_number(&mut self, start: usize) -> Result<TokenKind> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A dot only makes this a float if a digit follows; `1.name` must lex
        // as Integer, Dot, Ident for qualified-name syntax to survive.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = self.pos + 1;
            if matches!(self.bytes.get(lookahead), Some(b'+') | Some(b'-')) {
                lookahead += 1;
            }
            if matches!(self.bytes.get(lookahead), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos = lookahead;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>().map(TokenKind::Float).map_err(|e| {
                SqlError::new(
                    format!("bad float literal: {e}"),
                    Span::new(start, self.pos),
                )
            })
        } else {
            text.parse::<i64>().map(TokenKind::Integer).map_err(|e| {
                SqlError::new(
                    format!("bad integer literal: {e}"),
                    Span::new(start, self.pos),
                )
            })
        }
    }

    fn lex_word(&mut self, start: usize) -> TokenKind {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.input[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }
}

/// Lexes `input` into a token vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_select() {
        let ks = kinds("SELECT name FROM city");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("name".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("city".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let ks = kinds("a <= b >= c <> d != e < f > g = h");
        let ops: Vec<_> = ks
            .into_iter()
            .filter(|k| !matches!(k, TokenKind::Ident(_) | TokenKind::Eof))
            .collect();
        assert_eq!(
            ops,
            vec![
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2 7"),
            vec![
                TokenKind::Integer(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Integer(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn qualified_name_after_integer_is_not_a_float() {
        // Regression guard: `1.name` must not lex the `1.` as a float.
        assert_eq!(
            kinds("1.name"),
            vec![
                TokenKind::Integer(1),
                TokenKind::Dot,
                TokenKind::Ident("name".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::String("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_unicode_string() {
        assert_eq!(
            kinds("'Zürich'"),
            vec![TokenKind::String("Zürich".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_quoted_identifier() {
        assert_eq!(
            kinds("\"Mixed Case\""),
            vec![TokenKind::QuotedIdent("Mixed Case".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_comments_are_skipped() {
        let ks = kinds("SELECT -- trailing\n/* block\n comment */ 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Integer(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn bare_bang_is_an_error() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds("   "), vec![TokenKind::Eof]);
    }

    #[test]
    fn spans_point_at_source() {
        let toks = tokenize("SELECT name").unwrap();
        assert_eq!(toks[1].span.slice("SELECT name"), "name");
    }
}
