//! Abstract syntax tree for the Galois SQL dialect.
//!
//! The dialect covers the SPJA (select–project–join–aggregate) class the
//! paper executes against LLMs: `SELECT [DISTINCT] … FROM … [JOIN … ON …]
//! WHERE … GROUP BY … HAVING … ORDER BY … LIMIT …`, with arithmetic,
//! comparisons, `LIKE` / `IN` / `BETWEEN` / `IS NULL`, aggregate function
//! calls, and qualified names. Every node implements [`std::fmt::Display`]
//! producing canonical SQL text, which the test-suite round-trips through
//! the parser.

use std::fmt;

/// Where a relation's tuples come from in a hybrid query (paper §1, query
/// `q` over `LLM.country` and `DB.Employees`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceQualifier {
    /// Tuples are retrieved from the language model via prompts.
    Llm,
    /// Tuples live in the traditional relational store.
    Db,
}

impl fmt::Display for SourceQualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceQualifier::Llm => write!(f, "LLM"),
            SourceQualifier::Db => write!(f, "DB"),
        }
    }
}

/// A literal value appearing in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    String(String),
    /// `TRUE` / `FALSE`.
    Boolean(bool),
    /// `NULL`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    // Keep canonical text parseable as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// A possibly-qualified column reference, e.g. `c.name` or `population`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A `table.column` reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write!(f, "{t}.")?;
        }
        write!(f, "{}", self.column)
    }
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical `NOT x`.
    Not,
}

/// Arguments of a function call.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionArgs {
    /// `COUNT(*)`.
    Star,
    /// Ordinary expression arguments.
    Exprs(Vec<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `COUNT(DISTINCT name)` or `AVG(salary)`.
    Function {
        /// Uppercased function name.
        name: String,
        /// `DISTINCT` flag inside the call.
        distinct: bool,
        /// Call arguments.
        args: FunctionArgs,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression (almost always a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Convenience constructor for a column reference expression.
    pub fn col(table: Option<&str>, column: &str) -> Expr {
        Expr::Column(ColumnRef {
            table: table.map(str::to_string),
            column: column.to_string(),
        })
    }

    /// Walks the expression tree, invoking `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } => {
                if let FunctionArgs::Exprs(exprs) = args {
                    for e in exprs {
                        e.walk(f);
                    }
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
        }
    }

    /// Collects every column referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<ColumnRef> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.clone());
            }
        });
        cols
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// True if `name` (any case) is one of the supported aggregate functions.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

fn fmt_expr_prec(expr: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = expr_precedence(expr);
    let need_parens = prec < parent_prec;
    if need_parens {
        write!(f, "(")?;
    }
    match expr {
        Expr::Column(c) => write!(f, "{c}")?,
        Expr::Literal(l) => write!(f, "{l}")?,
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => {
                write!(f, "-")?;
                // Precedence 9 forces parens on a nested negation: `--x`
                // would otherwise lex as a line comment.
                fmt_expr_prec(expr, 9, f)?;
            }
            UnaryOp::Not => {
                write!(f, "NOT ")?;
                fmt_expr_prec(expr, 3, f)?;
            }
        },
        Expr::Binary { left, op, right } => {
            // Comparisons are non-associative in the grammar: a predicate
            // operand may not itself be a bare predicate, so force parens on
            // any operand below additive precedence.
            let (lp, rp) = if op.is_comparison() {
                (6, 6)
            } else {
                // Left-associative otherwise: right operand binds tighter.
                (prec, prec + 1)
            };
            fmt_expr_prec(left, lp, f)?;
            write!(f, " {op} ")?;
            fmt_expr_prec(right, rp, f)?;
        }
        Expr::Function {
            name,
            distinct,
            args,
        } => {
            write!(f, "{name}(")?;
            if *distinct {
                write!(f, "DISTINCT ")?;
            }
            match args {
                FunctionArgs::Star => write!(f, "*")?,
                FunctionArgs::Exprs(exprs) => {
                    for (i, e) in exprs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                }
            }
            write!(f, ")")?;
        }
        Expr::IsNull { expr, negated } => {
            fmt_expr_prec(expr, 6, f)?;
            write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })?;
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            fmt_expr_prec(expr, 6, f)?;
            write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")?;
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            fmt_expr_prec(expr, 6, f)?;
            write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
            fmt_expr_prec(low, 6, f)?;
            write!(f, " AND ")?;
            fmt_expr_prec(high, 6, f)?;
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            fmt_expr_prec(expr, 6, f)?;
            write!(f, " {}LIKE ", if *negated { "NOT " } else { "" })?;
            fmt_expr_prec(pattern, 6, f)?;
        }
    }
    if need_parens {
        write!(f, ")")?;
    }
    Ok(())
}

fn expr_precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub => 6,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 7,
        },
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::Unary {
            op: UnaryOp::Neg, ..
        } => 8,
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. } => 5,
        Expr::Column(_) | Expr::Literal(_) | Expr::Function { .. } => 9,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr_prec(self, 0, f)
    }
}

/// One output of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// Output expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Join type for explicit `JOIN` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    LeftOuter,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinType::Inner => write!(f, "JOIN"),
            JoinType::LeftOuter => write!(f, "LEFT JOIN"),
        }
    }
}

/// A base table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Optional `LLM.` / `DB.` source qualifier.
    pub source: Option<SourceQualifier>,
    /// Table name.
    pub name: String,
    /// Optional alias (`city c` or `city AS c`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds in the query scope: its alias if present,
    /// else the table name itself.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(src) = &self.source {
            write!(f, "{src}.")?;
        }
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

/// An explicit join attached to the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavour.
    pub join_type: JoinType,
    /// Joined relation.
    pub table: TableRef,
    /// `ON` predicate.
    pub on: Expr,
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, " {} {} ON {}", self.join_type, self.table, self.on)
    }
}

/// Sort direction in `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDirection {
    /// Ascending (`ASC`, the default).
    Asc,
    /// Descending (`DESC`).
    Desc,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Direction.
    pub direction: SortDirection,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.direction == SortDirection::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM relations (implicit cross join, filtered by
    /// WHERE — the style the paper's queries use).
    pub from: Vec<TableRef>,
    /// Explicit `JOIN … ON …` clauses applied after `from`.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
    /// `OFFSET` row count (rows skipped before the limit applies; only
    /// meaningful alongside `limit` in this dialect).
    pub offset: Option<u64>,
}

impl SelectStatement {
    /// Every table referenced in FROM and JOIN clauses.
    pub fn tables(&self) -> impl Iterator<Item = &TableRef> {
        self.from.iter().chain(self.joins.iter().map(|j| &j.table))
    }

    /// True if any select item or HAVING clause contains an aggregate, or a
    /// GROUP BY is present.
    pub fn is_aggregate_query(&self) -> bool {
        if !self.group_by.is_empty() {
            return true;
        }
        let in_items = self.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
        in_items || self.having.as_ref().is_some_and(|h| h.contains_aggregate())
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        for j in &self.joins {
            write!(f, "{j}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

/// Top-level statement. The dialect is read-only: a query, or a request to
/// explain how a query would be planned (paper §6 — the plan *is* the
/// chain-of-thought, so inspecting it is a first-class operation).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(SelectStatement),
    /// `EXPLAIN <query>` — plan the query and report the chosen plan with
    /// its cost estimates instead of executing it.
    Explain(SelectStatement),
}

impl Statement {
    /// The SELECT body of the statement (the query itself for `Select`,
    /// the explained query for `Explain`).
    pub fn select(&self) -> &SelectStatement {
        match self {
            Statement::Select(s) | Statement::Explain(s) => s,
        }
    }

    /// True for `EXPLAIN <query>`.
    pub fn is_explain(&self) -> bool {
        matches!(self, Statement::Explain(_))
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Integer(7).to_string(), "7");
        assert_eq!(Literal::Float(2.0).to_string(), "2.0");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Boolean(true).to_string(), "TRUE");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("name").to_string(), "name");
        assert_eq!(ColumnRef::qualified("c", "name").to_string(), "c.name");
    }

    #[test]
    fn expr_display_respects_precedence() {
        // (a + b) * c needs parens; a + b * c does not.
        let a = Expr::col(None, "a");
        let b = Expr::col(None, "b");
        let c = Expr::col(None, "c");
        let sum = Expr::binary(a.clone(), BinaryOp::Add, b.clone());
        let e1 = Expr::binary(sum.clone(), BinaryOp::Mul, c.clone());
        assert_eq!(e1.to_string(), "(a + b) * c");
        let prod = Expr::binary(b, BinaryOp::Mul, c);
        let e2 = Expr::binary(a, BinaryOp::Add, prod);
        assert_eq!(e2.to_string(), "a + b * c");
    }

    #[test]
    fn expr_display_left_associativity() {
        // a - (b - c) must keep its parens.
        let a = Expr::col(None, "a");
        let b = Expr::col(None, "b");
        let c = Expr::col(None, "c");
        let inner = Expr::binary(b, BinaryOp::Sub, c);
        let e = Expr::binary(a, BinaryOp::Sub, inner);
        assert_eq!(e.to_string(), "a - (b - c)");
    }

    #[test]
    fn aggregate_detection() {
        let count = Expr::Function {
            name: "COUNT".into(),
            distinct: false,
            args: FunctionArgs::Star,
        };
        assert!(count.contains_aggregate());
        let plain = Expr::Function {
            name: "LOWER".into(),
            distinct: false,
            args: FunctionArgs::Exprs(vec![Expr::col(None, "x")]),
        };
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn referenced_columns_collects_nested() {
        let e = Expr::Between {
            expr: Box::new(Expr::col(Some("c"), "pop")),
            low: Box::new(Expr::col(None, "lo")),
            high: Box::new(Expr::Literal(Literal::Integer(5))),
            negated: false,
        };
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], ColumnRef::qualified("c", "pop"));
        assert_eq!(cols[1], ColumnRef::bare("lo"));
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            source: None,
            name: "city".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t.binding(), "c");
        let t2 = TableRef {
            source: Some(SourceQualifier::Llm),
            name: "country".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "country");
        assert_eq!(t2.to_string(), "LLM.country");
    }

    #[test]
    fn is_aggregate_query_via_group_by() {
        let stmt = SelectStatement {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: vec![],
            joins: vec![],
            where_clause: None,
            group_by: vec![Expr::col(None, "x")],
            having: None,
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert!(stmt.is_aggregate_query());
    }
}
