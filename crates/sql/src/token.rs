//! Token definitions for the Galois SQL dialect.

use crate::error::Span;
use std::fmt;

/// SQL keywords recognised by the lexer.
///
/// Identifiers are matched case-insensitively against this list; anything
/// not listed here lexes as [`TokenKind::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the keywords themselves
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Offset,
    Asc,
    Desc,
    And,
    Or,
    Not,
    In,
    Like,
    Between,
    Is,
    Null,
    True,
    False,
    Join,
    Inner,
    Left,
    Outer,
    On,
    As,
    Explain,
}

impl Keyword {
    /// Looks up a keyword from an identifier, case-insensitively.
    /// (Not the `FromStr` trait: lookup is infallible-by-Option, not Result.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        // SQL keyword sets are small; a linear match on the uppercased text
        // is faster than building a map for this size.
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "SELECT" => Keyword::Select,
            "DISTINCT" => Keyword::Distinct,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "LIKE" => Keyword::Like,
            "BETWEEN" => Keyword::Between,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "OUTER" => Keyword::Outer,
            "ON" => Keyword::On,
            "AS" => Keyword::As,
            "EXPLAIN" => Keyword::Explain,
            _ => return None,
        })
    }

    /// The canonical (uppercase) spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Distinct => "DISTINCT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Limit => "LIMIT",
            Keyword::Offset => "OFFSET",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Like => "LIKE",
            Keyword::Between => "BETWEEN",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Outer => "OUTER",
            Keyword::On => "ON",
            Keyword::As => "AS",
            Keyword::Explain => "EXPLAIN",
        }
    }
}

/// The kind of a lexed token, carrying any literal payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A recognised SQL keyword.
    Keyword(Keyword),
    /// A bare identifier (table, column, alias, function name).
    Ident(String),
    /// A double-quoted identifier, kept verbatim (case-sensitive).
    QuotedIdent(String),
    /// An integer literal, e.g. `42`.
    Integer(i64),
    /// A floating point literal, e.g. `3.14`.
    Float(f64),
    /// A single-quoted string literal with escapes resolved.
    String(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input marker appended by the lexer.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Integer(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::String(s) => write!(f, "'{s}'"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the input.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// True if this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self.kind, TokenKind::Keyword(k) if k == kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str("GROUP"), Some(Keyword::Group));
        assert_eq!(Keyword::from_str("city"), None);
    }

    #[test]
    fn keyword_roundtrips_through_as_str() {
        for kw in [
            Keyword::Select,
            Keyword::Between,
            Keyword::Outer,
            Keyword::Limit,
            Keyword::As,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_keyword_predicate() {
        let t = Token::new(TokenKind::Keyword(Keyword::From), Span::new(0, 4));
        assert!(t.is_keyword(Keyword::From));
        assert!(!t.is_keyword(Keyword::Select));
    }

    #[test]
    fn display_of_operators() {
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::String("it".into()).to_string(), "'it'");
    }
}
