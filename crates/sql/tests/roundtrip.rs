//! Property tests: every AST the canonical printer emits must re-parse to
//! an identical AST, and printing must be a fixed point.

use galois_sql::ast::*;
use galois_sql::parse;
use proptest::prelude::*;

/// Identifiers that can never collide with dialect keywords.
fn ident_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "city",
        "country",
        "mayor",
        "population",
        "gdp",
        "name",
        "code",
        "airport",
        "singer",
        "salary",
        "area",
        "capital",
        "elevation",
        "t_alias",
        "col_1",
        "x",
        "y",
        "z",
    ])
    .prop_map(str::to_string)
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>().prop_map(Literal::Integer),
        // Finite floats only: NaN breaks equality, infinities don't print.
        any::<f64>()
            .prop_filter("finite", |v| v.is_finite())
            .prop_map(Literal::Float),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Boolean),
        Just(Literal::Null),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident_strategy()), ident_strategy()).prop_map(|(t, c)| {
        Expr::Column(ColumnRef {
            table: t,
            column: c,
        })
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        column_strategy(),
        literal_strategy().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Binary ops.
            (
                inner.clone(),
                prop::sample::select(vec![
                    BinaryOp::Eq,
                    BinaryOp::NotEq,
                    BinaryOp::Lt,
                    BinaryOp::LtEq,
                    BinaryOp::Gt,
                    BinaryOp::GtEq,
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Mod,
                    BinaryOp::And,
                    BinaryOp::Or,
                ]),
                inner.clone()
            )
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            // NOT. (Neg is excluded: the parser folds `-literal` into the
            // literal itself, so arbitrary Neg nodes cannot round-trip.)
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            // Aggregate-looking calls.
            (
                prop::sample::select(vec!["COUNT", "SUM", "AVG", "MIN", "MAX"]),
                any::<bool>(),
                inner.clone()
            )
                .prop_map(|(name, distinct, arg)| Expr::Function {
                    name: name.to_string(),
                    distinct,
                    args: FunctionArgs::Exprs(vec![arg]),
                }),
            Just(Expr::Function {
                name: "COUNT".into(),
                distinct: false,
                args: FunctionArgs::Star,
            }),
            // Predicate suffixes.
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n
                }
            ),
            (inner.clone(), "[a-z%_]{1,6}", any::<bool>()).prop_map(|(e, pat, n)| Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(Expr::Literal(Literal::String(pat))),
                negated: n
            }),
        ]
    })
}

fn table_ref_strategy() -> impl Strategy<Value = TableRef> {
    (
        proptest::option::of(prop::sample::select(vec![
            SourceQualifier::Llm,
            SourceQualifier::Db,
        ])),
        ident_strategy(),
        proptest::option::of(ident_strategy()),
    )
        .prop_map(|(source, name, alias)| TableRef {
            source,
            name,
            alias,
        })
}

fn select_strategy() -> impl Strategy<Value = SelectStatement> {
    (
        any::<bool>(),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                ident_strategy().prop_map(SelectItem::QualifiedWildcard),
                (expr_strategy(), proptest::option::of(ident_strategy()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..4,
        ),
        prop::collection::vec(table_ref_strategy(), 1..3),
        proptest::option::of(expr_strategy()),
        prop::collection::vec(column_strategy(), 0..3),
        proptest::option::of(expr_strategy()),
        prop::collection::vec(
            (expr_strategy(), any::<bool>()).prop_map(|(e, d)| OrderItem {
                expr: e,
                direction: if d {
                    SortDirection::Desc
                } else {
                    SortDirection::Asc
                },
            }),
            0..3,
        ),
        proptest::option::of(0u64..10_000),
        proptest::option::of(0u64..10_000),
    )
        .prop_map(
            |(distinct, items, from, where_clause, group_by, having, order_by, limit, offset)| {
                SelectStatement {
                    distinct,
                    items,
                    from,
                    joins: Vec::new(),
                    where_clause,
                    group_by,
                    having,
                    order_by,
                    limit,
                    // The dialect only accepts OFFSET after LIMIT, and the
                    // printer mirrors that.
                    offset: if limit.is_some() { offset } else { None },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_expr_reparses_identically(expr in expr_strategy()) {
        let sql = format!("SELECT {expr}");
        let Statement::Select(stmt) = parse(&sql).unwrap_or_else(|e| panic!("{sql}\n{e}")) else {
            panic!("expected SELECT")
        };
        let reparsed = match &stmt.items[0] {
            SelectItem::Expr { expr, .. } => expr.clone(),
            other => panic!("unexpected item {other:?}"),
        };
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn printed_statement_reparses_identically(stmt in select_strategy()) {
        let sql = Statement::Select(stmt.clone()).to_string();
        let Statement::Select(reparsed) = parse(&sql).unwrap_or_else(|e| panic!("{sql}\n{e}")) else {
            panic!("expected SELECT")
        };
        prop_assert_eq!(reparsed, stmt);
    }

    #[test]
    fn printing_is_a_fixed_point(stmt in select_strategy()) {
        let once = Statement::Select(stmt).to_string();
        let Statement::Select(re) = parse(&once).unwrap() else {
            panic!("expected SELECT")
        };
        let twice = Statement::Select(re).to_string();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,80}") {
        let _ = parse(&input);
    }
}
