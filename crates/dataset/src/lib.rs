//! # galois-dataset
//!
//! The Spider-substitute corpus for the Galois reproduction
//! (["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472),
//! EDBT 2024, §5).
//!
//! One seeded [`World`] is the single source of truth; it loads into
//!
//! * a ground-truth relational [`galois_relational::Database`]
//!   (`R_D` side of the evaluation), and
//! * the simulated LLM's [`galois_llm::KnowledgeStore`]
//!   (what the model has "memorised"),
//!
//! and [`build_suite`] derives the 46-query evaluation workload — 20
//! selection-only, 18 aggregate, 8 join queries, each with its SQL text
//! and NL paraphrase.
//!
//! ```
//! use galois_dataset::Scenario;
//!
//! let scenario = Scenario::generate(42);
//! assert_eq!(scenario.suite.len(), 46);
//! let r = scenario.database.execute("SELECT COUNT(*) FROM city").unwrap();
//! assert!(!r.is_empty());
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod names;
pub mod suite;
pub mod world;

pub use convert::{to_database, to_knowledge};
pub use suite::{
    build_operator_suite, build_suite, AggSpec, JoinSpec, OperatorCheck, OperatorFamily,
    OperatorQuery, QueryCategory, QuerySpec,
};
pub use world::{World, WorldConfig};

use galois_llm::KnowledgeStore;
use galois_relational::Database;
use std::sync::Arc;

/// Everything one experiment run needs, generated from a single seed.
#[derive(Clone)]
pub struct Scenario {
    /// The generated world.
    pub world: World,
    /// Ground-truth relational database.
    pub database: Database,
    /// The simulated LLM's knowledge store.
    pub knowledge: Arc<KnowledgeStore>,
    /// The 46-query evaluation suite.
    pub suite: Vec<QuerySpec>,
}

impl Scenario {
    /// Generates the full scenario for a seed.
    pub fn generate(seed: u64) -> Scenario {
        Self::generate_with(seed, WorldConfig::default())
    }

    /// Generates a scenario over a world `scale`× the default size.
    ///
    /// This is the bench knob for 10×/100× worlds: the suite is still the
    /// same 46 query shapes, but every relation behind them is `scale`
    /// times larger, so prompt volume grows proportionally.
    pub fn generate_scaled(seed: u64, scale: usize) -> Scenario {
        Self::generate_with(seed, WorldConfig::scaled(scale))
    }

    /// Generates with explicit world sizes.
    pub fn generate_with(seed: u64, cfg: WorldConfig) -> Scenario {
        let world = World::generate_with(seed, cfg);
        let database = to_database(&world);
        let knowledge = Arc::new(to_knowledge(&world));
        let suite = build_suite(&world);
        Scenario {
            world,
            database,
            knowledge,
            suite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_wires_everything() {
        let s = Scenario::generate(7);
        assert_eq!(s.suite.len(), 46);
        assert_eq!(
            s.knowledge.entities_of_type("city").len(),
            s.world.cities.len()
        );
        assert!(s.database.catalog().get("employees").is_ok());
    }
}
