//! The synthetic world: a deterministic, seeded population of countries,
//! cities, mayors, airports, singers, concerts and employees.
//!
//! One `World` value is the single source of truth for an experiment run:
//! it is loaded *losslessly* into the relational engine (ground truth `D`)
//! and *with popularity/alias metadata* into the simulated LLM's knowledge
//! store. This mirrors the paper's setup, where Spider tables approximate
//! knowledge the LLMs have memorised from the web.

use crate::names::{self, NamePool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A country record.
#[derive(Debug, Clone)]
pub struct Country {
    /// Canonical name (key).
    pub name: String,
    /// Two-letter code (alias slot 0).
    pub code2: String,
    /// Three-letter code (alias slot 1; also the DB-canonical code).
    pub code3: String,
    /// Continent name.
    pub continent: String,
    /// Population.
    pub population: i64,
    /// GDP in trillion credits.
    pub gdp: f64,
    /// Year of independence.
    pub independence_year: i64,
    /// Index of the capital in `World::cities`.
    pub capital: usize,
    /// Popularity in [0, 1].
    pub popularity: f64,
}

/// A city record.
#[derive(Debug, Clone)]
pub struct City {
    /// Canonical name (key).
    pub name: String,
    /// Index into `World::countries`.
    pub country: usize,
    /// Population.
    pub population: i64,
    /// Elevation in metres.
    pub elevation: i64,
    /// Index into `World::mayors`.
    pub mayor: usize,
    /// Popularity in [0, 1].
    pub popularity: f64,
}

/// A mayor record.
#[derive(Debug, Clone)]
pub struct Mayor {
    /// Full name (key).
    pub name: String,
    /// Short surface form ("A. Rossi") — alias slot 0.
    pub short: String,
    /// Birth date (year, month, day).
    pub birth: (i32, u8, u8),
    /// Year elected.
    pub election_year: i64,
    /// Party.
    pub party: String,
    /// Popularity in [0, 1] (mayors are niche entities).
    pub popularity: f64,
}

/// An airport record.
#[derive(Debug, Clone)]
pub struct Airport {
    /// IATA-style code (key; no aliases — the paper notes codes like JFK
    /// are real-world keys LLMs handle well).
    pub code: String,
    /// Display name.
    pub name: String,
    /// Index into `World::cities`.
    pub city: usize,
    /// Index into `World::countries`.
    pub country: usize,
    /// Elevation in metres.
    pub elevation: i64,
    /// Passengers per year.
    pub yearly_passengers: i64,
    /// Number of runways.
    pub runways: i64,
    /// Popularity in [0, 1].
    pub popularity: f64,
}

/// A singer record.
#[derive(Debug, Clone)]
pub struct Singer {
    /// Full name (key).
    pub name: String,
    /// Short surface form — alias slot 0.
    pub short: String,
    /// Index into `World::countries`.
    pub country: usize,
    /// Year of birth.
    pub birth_year: i64,
    /// Genre.
    pub genre: String,
    /// Net worth in million credits.
    pub net_worth: f64,
    /// Popularity in [0, 1].
    pub popularity: f64,
}

/// A concert record.
#[derive(Debug, Clone)]
pub struct Concert {
    /// Event name (key).
    pub name: String,
    /// Index into `World::singers`.
    pub singer: usize,
    /// Year held.
    pub year: i64,
    /// Attendance.
    pub attendance: i64,
    /// Index into `World::cities`.
    pub city: usize,
    /// Popularity in [0, 1].
    pub popularity: f64,
}

/// An employee record — *DB-only* data for the hybrid-querying scenario
/// (paper §1, Figure 2: the DB holds enterprise data the LLM has never
/// seen).
#[derive(Debug, Clone)]
pub struct Employee {
    /// Numeric id (key).
    pub id: i64,
    /// Name.
    pub name: String,
    /// Index into `World::countries` (stored as code3 in the table).
    pub country: usize,
    /// Salary in credits.
    pub salary: f64,
}

/// Size knobs for world generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldConfig {
    /// Number of countries.
    pub countries: usize,
    /// Number of cities.
    pub cities: usize,
    /// Number of airports.
    pub airports: usize,
    /// Number of singers.
    pub singers: usize,
    /// Number of concerts.
    pub concerts: usize,
    /// Number of (DB-only) employees.
    pub employees: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            countries: 24,
            cities: 60,
            airports: 36,
            singers: 28,
            concerts: 40,
            employees: 80,
        }
    }
}

impl WorldConfig {
    /// The default world with every entity count multiplied by `scale`
    /// (clamped to ≥ 1) — the knob behind 10×/100× bench worlds.
    pub fn scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        let base = WorldConfig::default();
        WorldConfig {
            countries: base.countries * scale,
            cities: base.cities * scale,
            airports: base.airports * scale,
            singers: base.singers * scale,
            concerts: base.concerts * scale,
            employees: base.employees * scale,
        }
    }
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Seed used for generation.
    pub seed: u64,
    /// Countries.
    pub countries: Vec<Country>,
    /// Cities (one mayor each).
    pub cities: Vec<City>,
    /// Mayors, parallel to `cities`.
    pub mayors: Vec<Mayor>,
    /// Airports.
    pub airports: Vec<Airport>,
    /// Singers.
    pub singers: Vec<Singer>,
    /// Concerts.
    pub concerts: Vec<Concert>,
    /// Employees (DB-only).
    pub employees: Vec<Employee>,
}

/// Draws a person name unused in `pool`, appending a numeric disambiguator
/// once the (bounded) name space is exhausted — scaled worlds need more
/// people than there are first/last-name combinations.
fn unique_person(pool: &mut NamePool, rng: &mut StdRng) -> (String, String) {
    for _ in 0..512 {
        let (full, short) = names::person(rng);
        if pool.unique_check(&full) {
            return (full, short);
        }
    }
    let mut i = 2;
    loop {
        let (full, short) = names::person(rng);
        let full = format!("{full} {i}");
        if pool.unique_check(&full) {
            return (full, format!("{short} {i}"));
        }
        i += 1;
    }
}

/// Re-rolls the tail of a country code until it is unused in `pool`.
/// Once a prefix's letter space saturates the code goes fully random, and
/// it *grows by one letter* every further 512 attempts — large scaled
/// worlds need more codes than any fixed length offers (676 two-letter
/// codes < 2 400 countries at 100×), so termination requires widening.
fn unique_code(pool: &mut NamePool, rng: &mut StdRng, code: &str) -> String {
    let mut code = code.to_string();
    let base_len = code.len();
    let mut attempts = 0usize;
    while !pool.unique_check(&code) {
        attempts += 1;
        let letter = |rng: &mut StdRng| (b'A' + rng.gen_range(0..26u8)) as char;
        code = if attempts <= 512 {
            // The original re-roll: keep the mnemonic prefix, vary the
            // last letter.
            format!("{}{}", &code[..code.len() - 1], letter(rng))
        } else {
            let len = base_len + attempts / 512;
            (0..len).map(|_| letter(rng)).collect()
        };
    }
    code
}

impl World {
    /// Generates a world with default sizes.
    pub fn generate(seed: u64) -> World {
        Self::generate_with(seed, WorldConfig::default())
    }

    /// Generates a world `scale`× the default size (10×/100× bench
    /// worlds).
    pub fn generate_scaled(seed: u64, scale: usize) -> World {
        Self::generate_with(seed, WorldConfig::scaled(scale))
    }

    /// Generates a world with explicit sizes.
    pub fn generate_with(seed: u64, cfg: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut country_pool = NamePool::new();
        let mut code_pool = NamePool::new();
        let mut city_pool = NamePool::new();
        let mut person_pool = NamePool::new();
        let mut code3s: Vec<String> = Vec::new();

        // Popularity: rank-based with jitter, so every type has a head of
        // famous entities and a long tail (drives Table 1's recall gaps).
        let popularity = |rank: usize, n: usize, rng: &mut StdRng| -> f64 {
            let base = 1.0 - (rank as f64 + 0.5) / n as f64;
            (base * 0.9 + rng.gen_range(0.0..0.1)).clamp(0.02, 0.98)
        };

        let mut countries = Vec::with_capacity(cfg.countries);
        for i in 0..cfg.countries {
            let name = country_pool.unique(&mut rng, names::country);
            let (code2, code3) = names::country_codes(&name);
            // Ensure distinct codes across countries.
            let code2 = unique_code(&mut code_pool, &mut rng, &code2);
            let code3 = unique_code(&mut code_pool, &mut rng, &code3);
            code3s.push(code3.clone());
            // Size correlates with fame: famous countries are the big,
            // rich ones. This is what makes popularity-biased recall
            // *bias* aggregates (AVG/SUM over the recalled subset drifts
            // high, MIN hides in the unpopular tail) — the paper's low
            // aggregate accuracy depends on it.
            let pop_score = popularity(i, cfg.countries, &mut rng);
            countries.push(Country {
                name,
                code2,
                code3,
                continent: names::continent(&mut rng),
                population: (10f64.powf(6.2 + 2.0 * pop_score + rng.gen_range(-0.2..0.2)) as i64
                    / 1000)
                    * 1000,
                gdp: ((0.2 + 24.0 * pop_score.powf(1.5) + rng.gen_range(-0.1..0.1)).max(0.1)
                    * 100.0)
                    .round()
                    / 100.0,
                independence_year: rng.gen_range(1800..2000),
                capital: 0, // fixed up after cities exist
                popularity: pop_score,
            });
        }

        let mut cities = Vec::with_capacity(cfg.cities);
        let mut mayors = Vec::with_capacity(cfg.cities);
        for i in 0..cfg.cities {
            let name = city_pool.unique(&mut rng, names::city);
            let country = rng.gen_range(0..countries.len());
            let pop = popularity(i, cfg.cities, &mut rng);
            let (full, short) = unique_person(&mut person_pool, &mut rng);
            mayors.push(Mayor {
                name: full,
                short,
                birth: (
                    rng.gen_range(1945..1985),
                    rng.gen_range(1..=12),
                    rng.gen_range(1..=28),
                ),
                election_year: rng.gen_range(2014..2024),
                party: names::party(&mut rng),
                // A mayor is known roughly as well as their city, damped.
                popularity: (pop * 0.6).clamp(0.02, 0.9),
            });
            cities.push(City {
                name,
                country,
                // Big cities are famous cities (size–fame correlation).
                population: (10f64.powf(4.8 + 2.3 * pop + rng.gen_range(-0.25..0.25)) as i64
                    / 1000)
                    * 1000,
                elevation: rng.gen_range(0..2500),
                mayor: i,
                popularity: pop,
            });
        }
        // Capitals: the most popular city of each country, else city 0.
        for (ci, c) in countries.iter_mut().enumerate() {
            let best = cities
                .iter()
                .enumerate()
                .filter(|(_, city)| city.country == ci)
                .max_by(|a, b| a.1.popularity.total_cmp(&b.1.popularity))
                .map(|(i, _)| i);
            c.capital = best.unwrap_or(0);
        }

        let mut airport_codes = NamePool::new();
        let mut airports = Vec::with_capacity(cfg.airports);
        for i in 0..cfg.airports {
            let city = rng.gen_range(0..cities.len());
            let code = airport_codes.unique(&mut rng, names::airport_code);
            // The first airport is always an international hub, so pattern
            // queries over airport names have non-empty ground truth on
            // every seed.
            let name = if i == 0 {
                format!("{} International Airport", cities[city].name)
            } else {
                names::airport_name(&cities[city].name, &mut rng)
            };
            let pop_score = popularity(i, cfg.airports, &mut rng);
            airports.push(Airport {
                code,
                name,
                city,
                country: cities[city].country,
                elevation: cities[city].elevation + rng.gen_range(-50..200),
                // Busy hubs are the well-known ones.
                yearly_passengers: (10f64.powf(5.7 + 2.3 * pop_score + rng.gen_range(-0.2..0.2))
                    as i64
                    / 1000)
                    * 1000,
                runways: 1 + (5.0 * pop_score).round() as i64,
                popularity: pop_score,
            });
        }

        let mut singers = Vec::with_capacity(cfg.singers);
        for i in 0..cfg.singers {
            let (full, short) = unique_person(&mut person_pool, &mut rng);
            let pop_score = popularity(i, cfg.singers, &mut rng);
            singers.push(Singer {
                name: full,
                short,
                country: rng.gen_range(0..countries.len()),
                birth_year: rng.gen_range(1950..2004),
                genre: names::genre(&mut rng),
                // Stars are rich; the tail is not.
                net_worth: ((2.0 + 480.0 * pop_score.powf(1.8) + rng.gen_range(0.0..15.0)) * 10.0)
                    .round()
                    / 10.0,
                popularity: pop_score,
            });
        }

        let mut concert_pool = NamePool::new();
        let mut concerts = Vec::with_capacity(cfg.concerts);
        for i in 0..cfg.concerts {
            let year = rng.gen_range(2015..2024);
            let name = concert_pool.unique(&mut rng, |r| names::concert(r, year));
            let pop_score = popularity(i, cfg.concerts, &mut rng);
            concerts.push(Concert {
                name,
                singer: rng.gen_range(0..singers.len()),
                year,
                attendance: (10f64.powf(3.2 + 1.9 * pop_score + rng.gen_range(-0.15..0.15)) as i64
                    / 100)
                    * 100,
                city: rng.gen_range(0..cities.len()),
                popularity: pop_score,
            });
        }

        let mut employees = Vec::with_capacity(cfg.employees);
        for i in 0..cfg.employees {
            let (full, _) = names::person(&mut rng);
            employees.push(Employee {
                id: 1000 + i as i64,
                name: full,
                country: rng.gen_range(0..countries.len()),
                salary: (rng.gen_range(20_000.0..150_000.0f64) / 100.0).round() * 100.0,
            });
        }

        World {
            seed,
            countries,
            cities,
            mayors,
            airports,
            singers,
            concerts,
            employees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(42);
        let b = World::generate(42);
        assert_eq!(a.cities.len(), b.cities.len());
        assert_eq!(a.cities[0].name, b.cities[0].name);
        assert_eq!(a.countries[3].code3, b.countries[3].code3);
        assert_eq!(a.mayors[10].birth, b.mayors[10].birth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(1);
        let b = World::generate(2);
        assert_ne!(
            a.cities.iter().map(|c| &c.name).collect::<Vec<_>>(),
            b.cities.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sizes_match_config() {
        let w = World::generate_with(
            5,
            WorldConfig {
                countries: 5,
                cities: 12,
                airports: 4,
                singers: 6,
                concerts: 7,
                employees: 9,
            },
        );
        assert_eq!(w.countries.len(), 5);
        assert_eq!(w.cities.len(), 12);
        assert_eq!(w.mayors.len(), 12);
        assert_eq!(w.airports.len(), 4);
        assert_eq!(w.singers.len(), 6);
        assert_eq!(w.concerts.len(), 7);
        assert_eq!(w.employees.len(), 9);
    }

    #[test]
    fn scaled_world_multiplies_every_count() {
        let w = World::generate_scaled(42, 10);
        let base = WorldConfig::default();
        assert_eq!(w.countries.len(), base.countries * 10);
        assert_eq!(w.cities.len(), base.cities * 10);
        assert_eq!(w.airports.len(), base.airports * 10);
        assert_eq!(w.singers.len(), base.singers * 10);
        assert_eq!(w.concerts.len(), base.concerts * 10);
        assert_eq!(w.employees.len(), base.employees * 10);
        // Uniqueness survives name-space exhaustion (600 cities from a
        // ~450-name space forces the disambiguation paths).
        let unique = |v: Vec<&String>| {
            let n = v.len();
            v.into_iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == n
        };
        assert!(unique(w.cities.iter().map(|c| &c.name).collect()));
        assert!(unique(w.mayors.iter().map(|m| &m.name).collect()));
        assert!(unique(w.singers.iter().map(|s| &s.name).collect()));
        assert!(unique(
            w.countries
                .iter()
                .flat_map(|c| [&c.code2, &c.code3])
                .collect()
        ));
    }

    #[test]
    fn code_space_saturation_terminates() {
        // 720 countries exceed the 676 two-letter codes (the regime a
        // 30×–100× world hits), so generation must widen codes rather
        // than loop forever.
        let w = World::generate_with(
            5,
            WorldConfig {
                countries: 720,
                cities: 12,
                airports: 4,
                singers: 4,
                concerts: 4,
                employees: 4,
            },
        );
        assert_eq!(w.countries.len(), 720);
        let codes: std::collections::HashSet<&String> =
            w.countries.iter().map(|c| &c.code2).collect();
        assert_eq!(codes.len(), 720);
        assert!(w.countries.iter().all(|c| c.code2.len() >= 2));
    }

    #[test]
    fn scale_one_is_the_default_world() {
        let a = World::generate(42);
        let b = World::generate_scaled(42, 1);
        assert_eq!(a.cities.len(), b.cities.len());
        assert_eq!(a.cities[7].name, b.cities[7].name);
        assert_eq!(a.countries[3].code3, b.countries[3].code3);
    }

    #[test]
    fn keys_are_unique() {
        let w = World::generate(42);
        let unique = |v: Vec<&String>| {
            let n = v.len();
            v.into_iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == n
        };
        assert!(unique(w.countries.iter().map(|c| &c.name).collect()));
        assert!(unique(w.cities.iter().map(|c| &c.name).collect()));
        assert!(unique(w.mayors.iter().map(|m| &m.name).collect()));
        assert!(unique(w.airports.iter().map(|a| &a.code).collect()));
        assert!(unique(w.singers.iter().map(|s| &s.name).collect()));
        assert!(unique(w.concerts.iter().map(|c| &c.name).collect()));
        let codes: Vec<&String> = w.countries.iter().map(|c| &c.code3).collect();
        assert!(unique(codes));
    }

    #[test]
    fn references_are_in_bounds() {
        let w = World::generate(42);
        for c in &w.cities {
            assert!(c.country < w.countries.len());
            assert!(c.mayor < w.mayors.len());
        }
        for a in &w.airports {
            assert!(a.city < w.cities.len());
            assert_eq!(a.country, w.cities[a.city].country);
        }
        for c in &w.concerts {
            assert!(c.singer < w.singers.len());
            assert!(c.city < w.cities.len());
        }
        for c in &w.countries {
            assert!(c.capital < w.cities.len());
        }
    }

    #[test]
    fn popularity_in_range_and_head_heavy() {
        let w = World::generate(42);
        for c in &w.cities {
            assert!((0.0..=1.0).contains(&c.popularity));
        }
        // Earlier ranks are more popular on average.
        let head: f64 = w.cities[..10].iter().map(|c| c.popularity).sum();
        let tail: f64 = w.cities[w.cities.len() - 10..]
            .iter()
            .map(|c| c.popularity)
            .sum();
        assert!(head > tail);
    }
}
