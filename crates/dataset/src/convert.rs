//! Loading the world into its two consumers:
//!
//! * [`to_database`] — lossless relational tables (the paper's Spider
//!   database `D`, used to compute the ground truth `R_D`);
//! * [`to_knowledge`] — the simulated LLM's knowledge store, carrying the
//!   popularity and alias metadata that drive the noise channels.
//!
//! Invariant (tested): for every relation, the set of facts in the
//! knowledge store projects exactly onto the table rows — the *same
//! world*, viewed once as data and once as "memorised text".

use crate::world::World;
use galois_llm::{FactValue, KnowledgeStore};
use galois_relational::{Column, DataType, Database, Date, Table, TableSchema, Value};

/// Builds the ground-truth relational database.
pub fn to_database(world: &World) -> Database {
    let mut db = Database::new();

    let mut country = Table::new(
        "country",
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("code", DataType::Text),
                Column::new("continent", DataType::Text),
                Column::new("population", DataType::Int),
                Column::new("gdp", DataType::Float),
                Column::new("independenceYear", DataType::Int),
                Column::new("capital", DataType::Text),
            ],
            "name",
        )
        .expect("static schema"),
    );
    for c in &world.countries {
        country
            .insert(vec![
                c.name.clone().into(),
                c.code3.clone().into(),
                c.continent.clone().into(),
                Value::Int(c.population),
                Value::Float(c.gdp),
                Value::Int(c.independence_year),
                world.cities[c.capital].name.clone().into(),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(country).expect("fresh catalog");

    let mut city = Table::new(
        "city",
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("country", DataType::Text),
                Column::new("population", DataType::Int),
                Column::new("elevation", DataType::Int),
                Column::new("mayor", DataType::Text),
            ],
            "name",
        )
        .expect("static schema"),
    );
    for c in &world.cities {
        city.insert(vec![
            c.name.clone().into(),
            world.countries[c.country].name.clone().into(),
            Value::Int(c.population),
            Value::Int(c.elevation),
            world.mayors[c.mayor].name.clone().into(),
        ])
        .expect("generated rows are valid");
    }
    db.add_table(city).expect("fresh catalog");

    let mut mayor = Table::new(
        "cityMayor",
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("birthDate", DataType::Date),
                Column::new("electionYear", DataType::Int),
                Column::new("party", DataType::Text),
            ],
            "name",
        )
        .expect("static schema"),
    );
    for m in &world.mayors {
        mayor
            .insert(vec![
                m.name.clone().into(),
                Value::Date(
                    Date::new(m.birth.0, m.birth.1, m.birth.2).expect("generated dates valid"),
                ),
                Value::Int(m.election_year),
                m.party.clone().into(),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(mayor).expect("fresh catalog");

    let mut airport = Table::new(
        "airport",
        TableSchema::new(
            vec![
                Column::new("code", DataType::Text),
                Column::new("name", DataType::Text),
                Column::new("city", DataType::Text),
                Column::new("country", DataType::Text),
                Column::new("elevation", DataType::Int),
                Column::new("yearlyPassengers", DataType::Int),
                Column::new("runways", DataType::Int),
            ],
            "code",
        )
        .expect("static schema"),
    );
    for a in &world.airports {
        airport
            .insert(vec![
                a.code.clone().into(),
                a.name.clone().into(),
                world.cities[a.city].name.clone().into(),
                world.countries[a.country].name.clone().into(),
                Value::Int(a.elevation),
                Value::Int(a.yearly_passengers),
                Value::Int(a.runways),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(airport).expect("fresh catalog");

    let mut singer = Table::new(
        "singer",
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("countryCode", DataType::Text),
                Column::new("birthYear", DataType::Int),
                Column::new("genre", DataType::Text),
                Column::new("netWorth", DataType::Float),
            ],
            "name",
        )
        .expect("static schema"),
    );
    for s in &world.singers {
        singer
            .insert(vec![
                s.name.clone().into(),
                world.countries[s.country].code3.clone().into(),
                Value::Int(s.birth_year),
                s.genre.clone().into(),
                Value::Float(s.net_worth),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(singer).expect("fresh catalog");

    let mut concert = Table::new(
        "concert",
        TableSchema::new(
            vec![
                Column::new("name", DataType::Text),
                Column::new("singer", DataType::Text),
                Column::new("year", DataType::Int),
                Column::new("attendance", DataType::Int),
                Column::new("city", DataType::Text),
            ],
            "name",
        )
        .expect("static schema"),
    );
    for c in &world.concerts {
        concert
            .insert(vec![
                c.name.clone().into(),
                world.singers[c.singer].name.clone().into(),
                Value::Int(c.year),
                Value::Int(c.attendance),
                world.cities[c.city].name.clone().into(),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(concert).expect("fresh catalog");

    let mut employees = Table::new(
        "employees",
        TableSchema::new(
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("countryCode", DataType::Text),
                Column::new("salary", DataType::Float),
            ],
            "id",
        )
        .expect("static schema"),
    );
    for e in &world.employees {
        employees
            .insert(vec![
                Value::Int(e.id),
                e.name.clone().into(),
                world.countries[e.country].code3.clone().into(),
                Value::Float(e.salary),
            ])
            .expect("generated rows are valid");
    }
    db.add_table(employees).expect("fresh catalog");

    db
}

/// Builds the simulated LLM's knowledge store. Note what is *absent*: the
/// `employees` data never enters the store — it is enterprise data only
/// the DB knows (Figure 2).
pub fn to_knowledge(world: &World) -> KnowledgeStore {
    let mut kb = KnowledgeStore::new();

    let country_ids: Vec<_> = world
        .countries
        .iter()
        .map(|c| {
            let id = kb.add_entity(&c.name, "country", c.popularity);
            kb.add_alias(id, &c.code2);
            kb.add_alias(id, &c.code3);
            id
        })
        .collect();
    let mayor_ids: Vec<_> = world
        .mayors
        .iter()
        .map(|m| {
            let id = kb.add_entity(&m.name, "mayor", m.popularity);
            kb.add_alias(id, &m.short);
            id
        })
        .collect();
    let city_ids: Vec<_> = world
        .cities
        .iter()
        .map(|c| {
            let id = kb.add_entity(&c.name, "city", c.popularity);
            // City-name variants: "San Brookhaven" ↔ "S. Brookhaven",
            // single-word names gain an informal "<name> City" form. These
            // are the reference-surface variants that break string joins.
            let alias = match c.name.split_once(' ') {
                Some((first, rest)) => format!("{}. {rest}", &first[..1]),
                None => format!("{} City", c.name),
            };
            kb.add_alias(id, alias);
            id
        })
        .collect();
    let airport_ids: Vec<_> = world
        .airports
        .iter()
        .map(|a| kb.add_entity(&a.code, "airport", a.popularity))
        .collect();
    let singer_ids: Vec<_> = world
        .singers
        .iter()
        .map(|s| {
            let id = kb.add_entity(&s.name, "singer", s.popularity);
            kb.add_alias(id, &s.short);
            id
        })
        .collect();
    let concert_ids: Vec<_> = world
        .concerts
        .iter()
        .map(|c| kb.add_entity(&c.name, "concert", c.popularity))
        .collect();

    for (c, id) in world.countries.iter().zip(&country_ids) {
        // `code` is a self-reference: rendering picks a code convention.
        kb.add_fact(*id, "code", FactValue::Entity(*id));
        kb.add_fact(*id, "continent", FactValue::Text(c.continent.clone()));
        kb.add_fact(*id, "population", FactValue::Number(c.population as f64));
        kb.add_fact(*id, "gdp", FactValue::Number(c.gdp));
        kb.add_fact(
            *id,
            "independenceYear",
            FactValue::Number(c.independence_year as f64),
        );
        kb.add_fact(*id, "capital", FactValue::Entity(city_ids[c.capital]));
    }
    for (c, id) in world.cities.iter().zip(&city_ids) {
        kb.add_fact(*id, "country", FactValue::Entity(country_ids[c.country]));
        kb.add_fact(*id, "population", FactValue::Number(c.population as f64));
        kb.add_fact(*id, "elevation", FactValue::Number(c.elevation as f64));
        kb.add_fact(*id, "mayor", FactValue::Entity(mayor_ids[c.mayor]));
    }
    for (m, id) in world.mayors.iter().zip(&mayor_ids) {
        kb.add_fact(
            *id,
            "birthDate",
            FactValue::Date {
                year: m.birth.0,
                month: m.birth.1,
                day: m.birth.2,
            },
        );
        kb.add_fact(
            *id,
            "electionYear",
            FactValue::Number(m.election_year as f64),
        );
        kb.add_fact(*id, "party", FactValue::Text(m.party.clone()));
    }
    for (a, id) in world.airports.iter().zip(&airport_ids) {
        kb.add_fact(*id, "name", FactValue::Text(a.name.clone()));
        kb.add_fact(*id, "city", FactValue::Entity(city_ids[a.city]));
        kb.add_fact(*id, "country", FactValue::Entity(country_ids[a.country]));
        kb.add_fact(*id, "elevation", FactValue::Number(a.elevation as f64));
        kb.add_fact(
            *id,
            "yearlyPassengers",
            FactValue::Number(a.yearly_passengers as f64),
        );
        kb.add_fact(*id, "runways", FactValue::Number(a.runways as f64));
    }
    for (s, id) in world.singers.iter().zip(&singer_ids) {
        kb.add_fact(
            *id,
            "countryCode",
            FactValue::Entity(country_ids[s.country]),
        );
        kb.add_fact(*id, "country", FactValue::Entity(country_ids[s.country]));
        kb.add_fact(*id, "birthYear", FactValue::Number(s.birth_year as f64));
        kb.add_fact(*id, "genre", FactValue::Text(s.genre.clone()));
        kb.add_fact(*id, "netWorth", FactValue::Number(s.net_worth));
    }
    for (c, id) in world.concerts.iter().zip(&concert_ids) {
        kb.add_fact(*id, "singer", FactValue::Entity(singer_ids[c.singer]));
        kb.add_fact(*id, "year", FactValue::Number(c.year as f64));
        kb.add_fact(*id, "attendance", FactValue::Number(c.attendance as f64));
        kb.add_fact(*id, "city", FactValue::Entity(city_ids[c.city]));
    }

    // Relation-name and attribute-label lexicon (schema-ambiguity
    // handling, paper §3 issue 2).
    kb.add_synonym("cityMayor", "mayor");
    kb.add_synonym("mayors", "mayor");
    kb.add_synonym("cities", "city");
    kb.add_synonym("countries", "country");
    kb.add_synonym("airports", "airport");
    kb.add_synonym("singers", "singer");
    kb.add_synonym("concerts", "concert");
    kb.add_synonym("number of residents", "population");
    kb.add_synonym("inhabitants", "population");
    kb.add_synonym("altitude", "elevation");

    kb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(42)
    }

    #[test]
    fn database_loads_all_tables() {
        let db = to_database(&world());
        assert_eq!(
            db.catalog().table_names(),
            vec![
                "airport",
                "city",
                "cityMayor",
                "concert",
                "country",
                "employees",
                "singer"
            ]
        );
        let w = world();
        assert_eq!(db.catalog().get("city").unwrap().len(), w.cities.len());
        assert_eq!(
            db.catalog().get("employees").unwrap().len(),
            w.employees.len()
        );
    }

    #[test]
    fn knowledge_mirrors_database_rows() {
        let w = world();
        let kb = to_knowledge(&w);
        assert_eq!(kb.entities_of_type("city").len(), w.cities.len());
        assert_eq!(kb.entities_of_type("country").len(), w.countries.len());
        assert_eq!(kb.entities_of_type("mayor").len(), w.mayors.len());
        // Spot-check fact/table agreement.
        let db = to_database(&w);
        let rome = &w.cities[0];
        let row = db
            .catalog()
            .get("city")
            .unwrap()
            .find_by_key(&rome.name.clone().into())
            .unwrap()
            .clone();
        let id = kb.resolve("city", &rome.name).unwrap();
        match kb.fact(id, "population").unwrap() {
            FactValue::Number(n) => assert_eq!(*n as i64, {
                match row[2] {
                    Value::Int(v) => v,
                    _ => panic!("population not int"),
                }
            }),
            other => panic!("unexpected fact {other:?}"),
        }
    }

    #[test]
    fn employees_stay_out_of_the_llm() {
        let kb = to_knowledge(&world());
        assert!(kb.entities_of_type("employee").is_empty());
        assert!(kb.entities_of_type("employees").is_empty());
    }

    #[test]
    fn queries_run_against_ground_truth() {
        let db = to_database(&world());
        let r = db
            .execute("SELECT name FROM city WHERE population > 1000000")
            .unwrap();
        assert!(!r.is_empty());
        let j = db
            .execute("SELECT c.name, m.birthDate FROM city c, cityMayor m WHERE c.mayor = m.name")
            .unwrap();
        assert_eq!(j.len(), db.catalog().get("city").unwrap().len());
    }

    #[test]
    fn relation_synonyms_resolve() {
        let kb = to_knowledge(&world());
        assert_eq!(kb.canonical_predicate("cityMayor"), "mayor");
        assert_eq!(kb.canonical_predicate("CITYMAYOR"), "mayor");
    }

    #[test]
    fn country_codes_are_aliases() {
        let w = world();
        let kb = to_knowledge(&w);
        let c = &w.countries[0];
        let id = kb.resolve("country", &c.name).unwrap();
        assert_eq!(kb.resolve("country", &c.code2), Some(id));
        assert_eq!(kb.resolve("country", &c.code3), Some(id));
    }
}
