//! Deterministic name generation for the synthetic world.
//!
//! The world is fictional on purpose: the simulated LLM "knows" exactly
//! what the knowledge store contains, so using invented places avoids any
//! illusion that real-world coverage is being tested. Name shapes mimic
//! the real ones (countries, cities, people, venues) so prompts read
//! naturally.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

const COUNTRY_STEMS: [&str; 18] = [
    "Vald", "Est", "Mor", "Kest", "Zan", "Thal", "Bren", "Ald", "Cor", "Dray", "Fen", "Gal",
    "Hesp", "Ilm", "Jor", "Kyr", "Lor", "Ner",
];
const COUNTRY_ENDS: [&str; 8] = ["ovia", "land", "mark", "stan", "ania", "ora", "heim", "ia"];

const CITY_STARTS: [&str; 16] = [
    "San", "Port", "New", "East", "West", "North", "South", "Fort", "Lake", "Mont", "Villa",
    "Saint", "Old", "Gran", "Bel", "Stone",
];
const CITY_CORES: [&str; 14] = [
    "brook", "haven", "field", "ridge", "dale", "wood", "mere", "ford", "gate", "crest", "fall",
    "view", "bourne", "march",
];

const FIRST_NAMES: [&str; 20] = [
    "Anna", "Boris", "Clara", "Dario", "Elena", "Felix", "Greta", "Hugo", "Iris", "Jonas", "Karla",
    "Leon", "Mira", "Nadia", "Oskar", "Petra", "Quentin", "Rosa", "Stefan", "Tessa",
];
const LAST_NAMES: [&str; 20] = [
    "Rossi", "Keller", "Novak", "Ivanov", "Berg", "Costa", "Dubois", "Eriksen", "Fischer",
    "Garcia", "Hansen", "Ito", "Jansen", "Kovacs", "Larsen", "Moreau", "Nilsson", "Orlov",
    "Petrov", "Quist",
];

const GENRES: [&str; 6] = ["rock", "pop", "jazz", "folk", "electronic", "classical"];
const PARTIES: [&str; 5] = ["Green", "Liberal", "Labour", "Unity", "Reform"];
const CONTINENTS: [&str; 4] = ["Euralia", "Meridia", "Osterra", "Zephyria"];

/// Unique-name factory over a generator function.
pub struct NamePool {
    used: HashSet<String>,
}

impl NamePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        NamePool {
            used: HashSet::new(),
        }
    }

    /// Registers `candidate` if unused; true when it was fresh.
    pub fn unique_check(&mut self, candidate: &str) -> bool {
        self.used.insert(candidate.to_string())
    }

    /// Draws until `gen` yields an unused name (appending a numeric suffix
    /// after too many collisions).
    pub fn unique(&mut self, rng: &mut StdRng, gen: impl Fn(&mut StdRng) -> String) -> String {
        for _ in 0..64 {
            let candidate = gen(rng);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
        // Pathological collision run: disambiguate deterministically.
        let mut i = 2;
        loop {
            let candidate = format!("{} {}", gen(rng), i);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
            i += 1;
        }
    }
}

impl Default for NamePool {
    fn default() -> Self {
        Self::new()
    }
}

/// A fictional country name.
pub fn country(rng: &mut StdRng) -> String {
    format!(
        "{}{}",
        COUNTRY_STEMS[rng.gen_range(0..COUNTRY_STEMS.len())],
        COUNTRY_ENDS[rng.gen_range(0..COUNTRY_ENDS.len())]
    )
}

/// A fictional city name.
pub fn city(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        format!(
            "{} {}",
            CITY_STARTS[rng.gen_range(0..CITY_STARTS.len())],
            capitalize(CITY_CORES[rng.gen_range(0..CITY_CORES.len())])
        )
    } else {
        format!(
            "{}{}",
            CITY_STARTS[rng.gen_range(0..CITY_STARTS.len())],
            CITY_CORES[rng.gen_range(0..CITY_CORES.len())]
        )
    }
}

/// A fictional person name, with its short form ("Anna Rossi" → "A. Rossi").
pub fn person(rng: &mut StdRng) -> (String, String) {
    let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
    (
        format!("{first} {last}"),
        format!("{}. {last}", &first[..1]),
    )
}

/// Derives 2- and 3-letter codes from a country name (uppercased prefix;
/// uniqueness is the caller's concern via [`NamePool`]).
pub fn country_codes(name: &str) -> (String, String) {
    let letters: String = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .collect::<String>()
        .to_ascii_uppercase();
    let take = |n: usize| letters.chars().take(n).collect::<String>();
    (take(2), take(3))
}

/// A genre for a singer.
pub fn genre(rng: &mut StdRng) -> String {
    GENRES[rng.gen_range(0..GENRES.len())].to_string()
}

/// A political party.
pub fn party(rng: &mut StdRng) -> String {
    PARTIES[rng.gen_range(0..PARTIES.len())].to_string()
}

/// A continent name.
pub fn continent(rng: &mut StdRng) -> String {
    CONTINENTS[rng.gen_range(0..CONTINENTS.len())].to_string()
}

/// All continent names (used to pick IN-list conditions).
pub fn continents() -> Vec<String> {
    CONTINENTS.iter().map(|s| s.to_string()).collect()
}

/// All genres.
pub fn genres() -> Vec<String> {
    GENRES.iter().map(|s| s.to_string()).collect()
}

/// All parties.
pub fn parties() -> Vec<String> {
    PARTIES.iter().map(|s| s.to_string()).collect()
}

/// An airport code (three uppercase letters).
pub fn airport_code(rng: &mut StdRng) -> String {
    (0..3)
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// An airport display name derived from its city.
pub fn airport_name(city: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.4) {
        format!("{city} International Airport")
    } else {
        format!("{city} Airport")
    }
}

/// A concert/venue event name.
pub fn concert(rng: &mut StdRng, year: i64) -> String {
    const FESTS: [&str; 8] = [
        "Sunset Festival",
        "Harbor Sounds",
        "Echo Nights",
        "Aurora Live",
        "Riverbeat",
        "Skyline Session",
        "Velvet Stage",
        "Northern Lights Tour",
    ];
    format!("{} {year}", FESTS[rng.gen_range(0..FESTS.len())])
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_generate_unique_names() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pool = NamePool::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let n = pool.unique(&mut rng, city);
            assert!(seen.insert(n));
        }
    }

    #[test]
    fn person_short_form() {
        let mut rng = StdRng::seed_from_u64(2);
        let (full, short) = person(&mut rng);
        assert!(full.contains(' '));
        assert!(short.contains(". "));
        assert_eq!(&short[..1], &full[..1]);
    }

    #[test]
    fn codes_derive_from_name() {
        let (c2, c3) = country_codes("Valdovia");
        assert_eq!(c2, "VA");
        assert_eq!(c3, "VAL");
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| country(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| country(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn airport_codes_are_three_letters() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let c = airport_code(&mut rng);
            assert_eq!(c.len(), 3);
            assert!(c.chars().all(|ch| ch.is_ascii_uppercase()));
        }
    }
}
