//! The 46-query evaluation suite (Spider substitute, paper §5 "Dataset").
//!
//! The paper selects 46 Spider queries "about generic topics, such as
//! world geography and airports", spanning selection-only, aggregate and
//! join queries, each paired with an NL paraphrase. Our suite mirrors that
//! mix — 20 selections, 18 aggregates, 8 joins — over the synthetic world.
//! Every query is generated from a [`QuerySpec`] that lowers to *both*
//! SQL text and the NL question, so the two stay semantically aligned by
//! construction (Spider guarantees the same via human annotation).
//!
//! Condition literals are drawn from quantiles of the generated data, so
//! every query has a non-empty ground-truth result (the paper averages
//! over queries with non-empty results).

use crate::world::World;
use galois_llm::intent::{CmpOp, Condition, PromptValue};
use galois_llm::nlq::{self, AggIntent, AggKind, JoinIntent, QueryIntent};

/// The paper's Table 2 query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryCategory {
    /// Selection-only queries ("the easiest subclass").
    SelectionOnly,
    /// Aggregate queries (global or grouped).
    Aggregate,
    /// Join queries ("the most problematic").
    Join,
}

impl QueryCategory {
    /// Display label matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            QueryCategory::SelectionOnly => "Selections",
            QueryCategory::Aggregate => "Aggregates",
            QueryCategory::Join => "Joins only",
        }
    }
}

/// A one-hop join in a query spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Attribute on the primary relation referencing the related key.
    pub via_attribute: String,
    /// Related table name.
    pub related_relation: String,
    /// Key attribute of the related relation.
    pub related_key: String,
    /// Attribute of the related relation to output.
    pub related_attribute: String,
}

/// An aggregate in a query spec.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate kind.
    pub kind: AggKind,
    /// Aggregated attribute (`None` for `COUNT(*)`).
    pub attribute: Option<String>,
    /// Group-by attribute.
    pub group_by: Option<String>,
}

/// A declarative description of one evaluation query; lowers to SQL and to
/// the NL paraphrase.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// 1-based id (q1…q46).
    pub id: usize,
    /// Table-2 class.
    pub category: QueryCategory,
    /// Primary relation (table name).
    pub relation: String,
    /// Key attribute of the primary relation.
    pub key_attr: String,
    /// Output attributes of the primary relation.
    pub select: Vec<String>,
    /// Optional filter on the primary relation.
    pub condition: Option<Condition>,
    /// Optional join.
    pub join: Option<JoinSpec>,
    /// Optional aggregate.
    pub aggregate: Option<AggSpec>,
}

impl QuerySpec {
    /// Lowers to SQL in the Galois dialect.
    pub fn to_sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        match (&self.aggregate, &self.join) {
            (Some(agg), _) => {
                let mut items = Vec::new();
                if let Some(g) = &agg.group_by {
                    items.push(g.clone());
                }
                let call = match (&agg.attribute, agg.kind) {
                    (None, _) => "COUNT(*)".to_string(),
                    (Some(a), k) => format!("{}({a})", agg_sql_name(k)),
                };
                items.push(call);
                sql.push_str(&items.join(", "));
                sql.push_str(&format!(" FROM {}", self.relation));
                if let Some(c) = &self.condition {
                    sql.push_str(&format!(" WHERE {}", condition_sql(c, None)));
                }
                if let Some(g) = &agg.group_by {
                    sql.push_str(&format!(" GROUP BY {g}"));
                }
            }
            (None, Some(join)) => {
                let items: Vec<String> = self
                    .select
                    .iter()
                    .map(|a| format!("p.{a}"))
                    .chain(std::iter::once(format!("r.{}", join.related_attribute)))
                    .collect();
                sql.push_str(&items.join(", "));
                sql.push_str(&format!(
                    " FROM {} p, {} r WHERE p.{} = r.{}",
                    self.relation, join.related_relation, join.via_attribute, join.related_key
                ));
                if let Some(c) = &self.condition {
                    sql.push_str(&format!(" AND {}", condition_sql(c, Some("p"))));
                }
            }
            (None, None) => {
                sql.push_str(&self.select.join(", "));
                sql.push_str(&format!(" FROM {}", self.relation));
                if let Some(c) = &self.condition {
                    sql.push_str(&format!(" WHERE {}", condition_sql(c, None)));
                }
            }
        }
        sql
    }

    /// Lowers to the NL-question intent.
    pub fn to_intent(&self) -> QueryIntent {
        QueryIntent {
            relation: self.relation.clone(),
            select: self.select.clone(),
            condition: self.condition.clone(),
            join: self.join.as_ref().map(|j| JoinIntent {
                via_attribute: j.via_attribute.clone(),
                related_attribute: j.related_attribute.clone(),
            }),
            aggregate: self.aggregate.as_ref().map(|a| AggIntent {
                kind: a.kind,
                attribute: a.attribute.clone(),
                group_by: a.group_by.clone(),
            }),
        }
    }

    /// The NL paraphrase `t` of this query.
    pub fn question(&self) -> String {
        nlq::render_question(&self.to_intent())
    }
}

fn agg_sql_name(k: AggKind) -> &'static str {
    match k {
        AggKind::Count => "COUNT",
        AggKind::Sum => "SUM",
        AggKind::Avg => "AVG",
        AggKind::Min => "MIN",
        AggKind::Max => "MAX",
    }
}

fn value_sql(v: &PromptValue) -> String {
    match v {
        PromptValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
        PromptValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
    }
}

/// Renders a protocol condition as a SQL predicate.
pub fn condition_sql(c: &Condition, alias: Option<&str>) -> String {
    let attr = match alias {
        Some(a) => format!("{a}.{}", c.attribute),
        None => c.attribute.clone(),
    };
    match c.op {
        CmpOp::Eq => format!("{attr} = {}", value_sql(&c.values[0])),
        CmpOp::NotEq => format!("{attr} <> {}", value_sql(&c.values[0])),
        CmpOp::Gt => format!("{attr} > {}", value_sql(&c.values[0])),
        CmpOp::GtEq => format!("{attr} >= {}", value_sql(&c.values[0])),
        CmpOp::Lt => format!("{attr} < {}", value_sql(&c.values[0])),
        CmpOp::LtEq => format!("{attr} <= {}", value_sql(&c.values[0])),
        CmpOp::Between => format!(
            "{attr} BETWEEN {} AND {}",
            value_sql(&c.values[0]),
            value_sql(&c.values[1])
        ),
        CmpOp::In => {
            let vs: Vec<String> = c.values.iter().map(value_sql).collect();
            format!("{attr} IN ({})", vs.join(", "))
        }
        CmpOp::Like => format!("{attr} LIKE {}", value_sql(&c.values[0])),
        CmpOp::IsNull => format!("{attr} IS NULL"),
        CmpOp::IsNotNull => format!("{attr} IS NOT NULL"),
    }
}

fn cond(attribute: &str, op: CmpOp, values: Vec<PromptValue>) -> Option<Condition> {
    Some(Condition {
        attribute: attribute.to_string(),
        op,
        values,
    })
}

fn num(n: f64) -> PromptValue {
    PromptValue::Number(n)
}

fn text(s: impl Into<String>) -> PromptValue {
    PromptValue::Text(s.into())
}

/// p-th percentile (0–100) of a value set, rounded to a friendly literal.
/// The result is clamped strictly inside the value range (between the 2nd
/// smallest and 2nd largest) so that comparisons against it always keep a
/// non-empty result — the paper only evaluates queries with non-empty
/// ground truth.
fn percentile(mut values: Vec<f64>, p: f64) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() - 1) as f64 * p / 100.0).round() as usize;
    let raw = values[idx];
    // Round to two significant-ish digits so prompts read naturally.
    let rounded = if raw.abs() >= 100.0 {
        let mag = 10f64.powf(raw.abs().log10().floor() - 1.0);
        (raw / mag).round() * mag
    } else {
        raw.round()
    };
    // Strictly inside (min, max): a `>` threshold keeps the max row, a
    // `<` threshold keeps the min row, even when extreme values repeat.
    let lo = values[0] + 1.0;
    let hi = values[values.len() - 1] - 1.0;
    if lo > hi {
        return (values[0] + values[values.len() - 1]) / 2.0;
    }
    rounded.clamp(lo, hi)
}

/// Builds the 46-query suite from world statistics.
pub fn build_suite(world: &World) -> Vec<QuerySpec> {
    let city_pop: Vec<f64> = world.cities.iter().map(|c| c.population as f64).collect();
    let city_elev: Vec<f64> = world.cities.iter().map(|c| c.elevation as f64).collect();
    let country_gdp: Vec<f64> = world.countries.iter().map(|c| c.gdp).collect();
    let country_pop: Vec<f64> = world
        .countries
        .iter()
        .map(|c| c.population as f64)
        .collect();
    let airport_elev: Vec<f64> = world.airports.iter().map(|a| a.elevation as f64).collect();
    let singer_birth: Vec<f64> = world.singers.iter().map(|s| s.birth_year as f64).collect();
    let singer_worth: Vec<f64> = world.singers.iter().map(|s| s.net_worth).collect();
    let concert_att: Vec<f64> = world.concerts.iter().map(|c| c.attendance as f64).collect();
    let indep_years: Vec<f64> = world
        .countries
        .iter()
        .map(|c| c.independence_year as f64)
        .collect();

    // A country that actually contains cities/airports, for Eq conditions.
    let busiest_country = |by: &dyn Fn(usize) -> usize| -> String {
        let counts: Vec<usize> = (0..world.countries.len()).map(by).collect();
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        world.countries[best].name.clone()
    };
    let city_country = busiest_country(&|i| world.cities.iter().filter(|c| c.country == i).count());
    let airport_country =
        busiest_country(&|i| world.airports.iter().filter(|a| a.country == i).count());
    let concert_year = {
        let mut counts = std::collections::HashMap::new();
        for c in &world.concerts {
            *counts.entry(c.year).or_insert(0usize) += 1;
        }
        // Tie-break on the year itself: HashMap iteration order is not
        // deterministic, and `build_suite` must be.
        *counts
            .iter()
            .max_by_key(|(y, n)| (**n, **y))
            .map(|(y, _)| y)
            .unwrap_or(&2019)
    };
    // Modal categorical values, so equality conditions are never empty on
    // any seed.
    let modal = |values: Vec<String>| -> Vec<String> {
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for v in values {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut pairs: Vec<(String, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.into_iter().map(|(v, _)| v).collect()
    };
    let continents = modal(
        world
            .countries
            .iter()
            .map(|c| c.continent.clone())
            .collect(),
    );
    let genres = modal(world.singers.iter().map(|s| s.genre.clone()).collect());
    let parties = modal(world.mayors.iter().map(|m| m.party.clone()).collect());
    let top_continent = continents[0].clone();
    let second_continent = continents
        .get(1)
        .cloned()
        .unwrap_or_else(|| top_continent.clone());
    let top_genre = genres[0].clone();
    let second_genre = genres.get(1).cloned().unwrap_or_else(|| top_genre.clone());
    let top_party = parties[0].clone();
    // Modal first letter of city names, so the LIKE query is non-empty.
    let city_initial = {
        let mut counts: std::collections::HashMap<char, usize> = Default::default();
        for c in &world.cities {
            if let Some(ch) = c.name.chars().next() {
                *counts.entry(ch).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(char, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs[0].0
    };

    let p = percentile;
    let mut q = Vec::with_capacity(46);
    let mut id = 0usize;
    let mut push = |q: &mut Vec<QuerySpec>,
                    category: QueryCategory,
                    relation: &str,
                    key_attr: &str,
                    select: Vec<&str>,
                    condition: Option<Condition>,
                    join: Option<JoinSpec>,
                    aggregate: Option<AggSpec>| {
        id += 1;
        q.push(QuerySpec {
            id,
            category,
            relation: relation.to_string(),
            key_attr: key_attr.to_string(),
            select: select.into_iter().map(str::to_string).collect(),
            condition,
            join,
            aggregate,
        });
    };

    use QueryCategory::*;

    // --- Selection-only (q1–q20) -------------------------------------
    push(
        &mut q,
        SelectionOnly,
        "city",
        "name",
        vec!["name"],
        cond(
            "population",
            CmpOp::Gt,
            vec![num(p(city_pop.clone(), 40.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "city",
        "name",
        vec!["name", "population"],
        cond(
            "population",
            CmpOp::Between,
            vec![
                num(p(city_pop.clone(), 20.0)),
                num(p(city_pop.clone(), 70.0)),
            ],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "country",
        "name",
        vec!["name"],
        cond("gdp", CmpOp::Gt, vec![num(p(country_gdp.clone(), 50.0))]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "country",
        "name",
        vec!["name", "capital"],
        cond("continent", CmpOp::Eq, vec![text(top_continent.clone())]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "country",
        "name",
        vec!["name", "independenceYear"],
        cond(
            "independenceYear",
            CmpOp::Gt,
            vec![num(p(indep_years.clone(), 45.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "airport",
        "code",
        vec!["code"],
        cond(
            "elevation",
            CmpOp::Gt,
            vec![num(p(airport_elev.clone(), 70.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "airport",
        "code",
        vec!["code", "name"],
        cond("country", CmpOp::Eq, vec![text(airport_country.clone())]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "singer",
        "name",
        vec!["name"],
        cond("genre", CmpOp::Eq, vec![text(top_genre.clone())]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "singer",
        "name",
        vec!["name", "birthYear"],
        cond(
            "birthYear",
            CmpOp::Lt,
            vec![num(p(singer_birth.clone(), 40.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "concert",
        "name",
        vec!["name"],
        cond("year", CmpOp::Eq, vec![num(concert_year as f64)]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "city",
        "name",
        vec!["name"],
        cond("name", CmpOp::Like, vec![text(format!("{city_initial}%"))]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "country",
        "name",
        vec!["name"],
        cond(
            "continent",
            CmpOp::In,
            vec![text(top_continent.clone()), text(second_continent.clone())],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "cityMayor",
        "name",
        vec!["name", "electionYear"],
        cond("electionYear", CmpOp::GtEq, vec![num(2019.0)]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "cityMayor",
        "name",
        vec!["name"],
        cond("party", CmpOp::Eq, vec![text(top_party.clone())]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "airport",
        "code",
        vec!["code"],
        cond("runways", CmpOp::GtEq, vec![num(3.0)]),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "concert",
        "name",
        vec!["name", "attendance"],
        cond(
            "attendance",
            CmpOp::Gt,
            vec![num(p(concert_att.clone(), 50.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "singer",
        "name",
        vec!["name"],
        cond(
            "netWorth",
            CmpOp::LtEq,
            vec![num(p(singer_worth.clone(), 50.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "city",
        "name",
        vec!["name"],
        cond(
            "elevation",
            CmpOp::Lt,
            vec![num(p(city_elev.clone(), 35.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "country",
        "name",
        vec!["name", "population"],
        cond(
            "population",
            CmpOp::GtEq,
            vec![num(p(country_pop.clone(), 50.0))],
        ),
        None,
        None,
    );
    push(
        &mut q,
        SelectionOnly,
        "airport",
        "code",
        vec!["name"],
        cond("name", CmpOp::Like, vec![text("%International%")]),
        None,
        None,
    );

    // --- Aggregates (q21–q38) ----------------------------------------
    let agg = |kind, attribute: Option<&str>, group_by: Option<&str>| {
        Some(AggSpec {
            kind,
            attribute: attribute.map(str::to_string),
            group_by: group_by.map(str::to_string),
        })
    };
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Count, None, None),
    );
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        cond(
            "population",
            CmpOp::Gt,
            vec![num(p(city_pop.clone(), 60.0))],
        ),
        None,
        agg(AggKind::Count, None, None),
    );
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Avg, Some("population"), None),
    );
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Max, Some("population"), None),
    );
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        cond("country", CmpOp::Eq, vec![text(city_country.clone())]),
        None,
        agg(AggKind::Sum, Some("population"), None),
    );
    push(
        &mut q,
        Aggregate,
        "airport",
        "code",
        vec![],
        None,
        None,
        agg(AggKind::Min, Some("yearlyPassengers"), None),
    );
    push(
        &mut q,
        Aggregate,
        "airport",
        "code",
        vec![],
        None,
        None,
        agg(AggKind::Count, None, Some("country")),
    );
    push(
        &mut q,
        Aggregate,
        "country",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Avg, Some("gdp"), Some("continent")),
    );
    push(
        &mut q,
        Aggregate,
        "singer",
        "name",
        vec![],
        cond("genre", CmpOp::Eq, vec![text(second_genre.clone())]),
        None,
        agg(AggKind::Count, None, None),
    );
    push(
        &mut q,
        Aggregate,
        "singer",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Max, Some("netWorth"), None),
    );
    push(
        &mut q,
        Aggregate,
        "singer",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Min, Some("birthYear"), None),
    );
    push(
        &mut q,
        Aggregate,
        "concert",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Count, None, Some("year")),
    );
    push(
        &mut q,
        Aggregate,
        "concert",
        "name",
        vec![],
        cond("year", CmpOp::Eq, vec![num(concert_year as f64)]),
        None,
        agg(AggKind::Sum, Some("attendance"), None),
    );
    push(
        &mut q,
        Aggregate,
        "country",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Min, Some("population"), None),
    );
    push(
        &mut q,
        Aggregate,
        "city",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Avg, Some("elevation"), Some("country")),
    );
    push(
        &mut q,
        Aggregate,
        "country",
        "name",
        vec![],
        cond("continent", CmpOp::Eq, vec![text(top_continent.clone())]),
        None,
        agg(AggKind::Count, None, None),
    );
    push(
        &mut q,
        Aggregate,
        "airport",
        "code",
        vec![],
        None,
        None,
        agg(AggKind::Max, Some("yearlyPassengers"), None),
    );
    push(
        &mut q,
        Aggregate,
        "concert",
        "name",
        vec![],
        None,
        None,
        agg(AggKind::Sum, Some("attendance"), None),
    );

    // --- Joins (q39–q46) ---------------------------------------------
    let join = |via: &str, rel: &str, rkey: &str, rattr: &str| {
        Some(JoinSpec {
            via_attribute: via.to_string(),
            related_relation: rel.to_string(),
            related_key: rkey.to_string(),
            related_attribute: rattr.to_string(),
        })
    };
    // The paper's motivating query: cities with their mayor's birth date.
    push(
        &mut q,
        Join,
        "city",
        "name",
        vec!["name"],
        None,
        join("mayor", "cityMayor", "name", "birthDate"),
        None,
    );
    // Code-keyed join — the "IT" vs "ITA" failure case.
    push(
        &mut q,
        Join,
        "singer",
        "name",
        vec!["name"],
        None,
        join("countryCode", "country", "code", "continent"),
        None,
    );
    push(
        &mut q,
        Join,
        "city",
        "name",
        vec!["name"],
        cond(
            "population",
            CmpOp::Gt,
            vec![num(p(city_pop.clone(), 50.0))],
        ),
        join("country", "country", "name", "gdp"),
        None,
    );
    push(
        &mut q,
        Join,
        "airport",
        "code",
        vec!["code"],
        None,
        join("city", "city", "name", "population"),
        None,
    );
    push(
        &mut q,
        Join,
        "concert",
        "name",
        vec!["name"],
        None,
        join("singer", "singer", "name", "genre"),
        None,
    );
    push(
        &mut q,
        Join,
        "city",
        "name",
        vec!["name"],
        cond("elevation", CmpOp::Lt, vec![num(p(city_elev, 60.0))]),
        join("mayor", "cityMayor", "name", "party"),
        None,
    );
    push(
        &mut q,
        Join,
        "airport",
        "code",
        vec!["code"],
        None,
        join("country", "country", "name", "code"),
        None,
    );
    push(
        &mut q,
        Join,
        "concert",
        "name",
        vec!["name"],
        None,
        join("city", "city", "name", "country"),
        None,
    );

    assert_eq!(q.len(), 46, "the paper evaluates exactly 46 queries");
    q
}

/// Operator families of the widened query surface (joins, grouped
/// aggregates, LIMIT windows), exercised by the oracle-backed operator
/// battery. These ride *alongside* the immutable 46-query paper suite —
/// [`build_suite`] keeps its exact 20/18/8 mix; the operator suite is a
/// separate workload with its own ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorFamily {
    /// Joins where both sides are LLM relations.
    JoinLlm,
    /// Joins of an LLM relation against a `DB.`-qualified stored table.
    JoinStored,
    /// Grouped aggregates (GROUP BY / HAVING), including over a join.
    GroupAgg,
    /// ORDER BY / LIMIT / OFFSET windows.
    Limit,
}

impl OperatorFamily {
    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OperatorFamily::JoinLlm => "LLM ⋈ LLM",
            OperatorFamily::JoinStored => "LLM ⋈ stored",
            OperatorFamily::GroupAgg => "Group/Agg",
            OperatorFamily::Limit => "Limit",
        }
    }
}

/// How an operator query's result is scored against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorCheck {
    /// The result must equal the ground-truth relation as a multiset of
    /// rendered rows (deterministic queries: joins, aggregates, and
    /// fully-ordered windows).
    Exact,
    /// An unordered window (`LIMIT` without a total order): the result
    /// must be one that evaluating the unlimited query fully and then
    /// truncating *admits* — every row appears in the unlimited ground
    /// truth, and the row count is exactly
    /// `min(n, max(|truth| - offset, 0))`.
    Window {
        /// The same query without its LIMIT/OFFSET clause.
        unlimited_sql: String,
        /// The window budget `n`.
        n: usize,
        /// Rows skipped before the budget.
        offset: usize,
    },
}

/// One query of the operator battery.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorQuery {
    /// 1-based id within the operator suite.
    pub id: usize,
    /// Operator family.
    pub family: OperatorFamily,
    /// SQL in the Galois dialect.
    pub sql: String,
    /// Scoring semantics.
    pub check: OperatorCheck,
}

/// Builds the operator-surface workload from world statistics. Condition
/// literals are drawn from quantiles (like [`build_suite`]) so every
/// query has a non-empty ground truth on any seed.
pub fn build_operator_suite(world: &World) -> Vec<OperatorQuery> {
    let city_pop: Vec<f64> = world.cities.iter().map(|c| c.population as f64).collect();
    let city_elev: Vec<f64> = world.cities.iter().map(|c| c.elevation as f64).collect();
    let p = percentile;

    let mut out = Vec::new();
    let push = |out: &mut Vec<OperatorQuery>,
                family: OperatorFamily,
                sql: String,
                check: OperatorCheck| {
        let id = out.len() + 1;
        out.push(OperatorQuery {
            id,
            family,
            sql,
            check,
        });
    };
    use OperatorFamily::*;

    // --- LLM ⋈ LLM ---------------------------------------------------
    push(
        &mut out,
        JoinLlm,
        format!(
            "SELECT c.name, k.gdp FROM city c, country k \
             WHERE c.country = k.name AND c.population > {}",
            p(city_pop.clone(), 40.0)
        ),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinLlm,
        "SELECT s.name, k.continent FROM singer s, country k \
         WHERE s.countryCode = k.code"
            .to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinLlm,
        "SELECT a.code, c.population FROM airport a, city c WHERE a.city = c.name".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinLlm,
        "SELECT co.name, s.genre FROM concert co, singer s WHERE co.singer = s.name".to_string(),
        OperatorCheck::Exact,
    );

    // --- LLM ⋈ stored -------------------------------------------------
    push(
        &mut out,
        JoinStored,
        "SELECT c.name, k.gdp FROM city c, DB.country k WHERE c.country = k.name".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinStored,
        format!(
            "SELECT c.name, m.party FROM city c, DB.cityMayor m \
             WHERE c.mayor = m.name AND c.elevation < {}",
            p(city_elev.clone(), 60.0)
        ),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinStored,
        "SELECT a.code, k.continent FROM airport a, DB.country k WHERE a.country = k.name"
            .to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        JoinStored,
        "SELECT co.name, s.birthYear FROM concert co, DB.singer s WHERE co.singer = s.name"
            .to_string(),
        OperatorCheck::Exact,
    );

    // --- Grouped aggregates -------------------------------------------
    push(
        &mut out,
        GroupAgg,
        "SELECT country, COUNT(*) FROM city GROUP BY country".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        GroupAgg,
        "SELECT continent, AVG(gdp) FROM country GROUP BY continent".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        GroupAgg,
        "SELECT genre, MAX(netWorth) FROM singer GROUP BY genre HAVING COUNT(*) >= 1".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        GroupAgg,
        "SELECT year, SUM(attendance) FROM concert GROUP BY year HAVING SUM(attendance) > 0"
            .to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        GroupAgg,
        "SELECT k.continent, COUNT(*) FROM city c, country k \
         WHERE c.country = k.name GROUP BY k.continent"
            .to_string(),
        OperatorCheck::Exact,
    );

    // --- LIMIT windows -------------------------------------------------
    push(
        &mut out,
        Limit,
        "SELECT name FROM city ORDER BY name LIMIT 5".to_string(),
        OperatorCheck::Exact,
    );
    push(
        &mut out,
        Limit,
        "SELECT name, population FROM city ORDER BY population DESC, name LIMIT 3 OFFSET 2"
            .to_string(),
        OperatorCheck::Exact,
    );
    {
        let unlimited = format!(
            "SELECT name FROM city WHERE population > {}",
            p(city_pop.clone(), 30.0)
        );
        push(
            &mut out,
            Limit,
            format!("{unlimited} LIMIT 4"),
            OperatorCheck::Window {
                unlimited_sql: unlimited,
                n: 4,
                offset: 0,
            },
        );
    }
    push(
        &mut out,
        Limit,
        "SELECT code FROM airport ORDER BY code LIMIT 4 OFFSET 1".to_string(),
        OperatorCheck::Exact,
    );
    {
        let unlimited = "SELECT name FROM city".to_string();
        push(
            &mut out,
            Limit,
            format!("{unlimited} LIMIT 6 OFFSET 2"),
            OperatorCheck::Window {
                unlimited_sql: unlimited,
                n: 6,
                offset: 2,
            },
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_database;

    fn suite() -> (World, Vec<QuerySpec>) {
        let w = World::generate(42);
        let s = build_suite(&w);
        (w, s)
    }

    #[test]
    fn suite_has_paper_category_mix() {
        let (_, s) = suite();
        assert_eq!(s.len(), 46);
        let count = |c: QueryCategory| s.iter().filter(|q| q.category == c).count();
        assert_eq!(count(QueryCategory::SelectionOnly), 20);
        assert_eq!(count(QueryCategory::Aggregate), 18);
        assert_eq!(count(QueryCategory::Join), 8);
        // Ids are 1..=46 in order.
        for (i, q) in s.iter().enumerate() {
            assert_eq!(q.id, i + 1);
        }
    }

    #[test]
    fn all_sql_parses_and_plans() {
        let (w, s) = suite();
        let db = to_database(&w);
        for q in &s {
            let sql = q.to_sql();
            db.plan(&sql)
                .unwrap_or_else(|e| panic!("q{}: {sql}\n{e}", q.id));
        }
    }

    #[test]
    fn all_queries_have_non_empty_ground_truth() {
        let (w, s) = suite();
        let db = to_database(&w);
        for q in &s {
            let r = db
                .execute(&q.to_sql())
                .unwrap_or_else(|e| panic!("q{}: {e}", q.id));
            assert!(!r.is_empty(), "q{} returned empty: {}", q.id, q.to_sql());
        }
    }

    #[test]
    fn all_questions_parse_back_to_their_intent() {
        let (_, s) = suite();
        for q in &s {
            let question = q.question();
            let parsed = galois_llm::nlq::parse_question(&question)
                .unwrap_or_else(|| panic!("q{}: {question}", q.id));
            assert_eq!(parsed, q.to_intent(), "q{}", q.id);
        }
    }

    #[test]
    fn sql_examples_look_right() {
        let (_, s) = suite();
        let q39 = &s[38];
        assert_eq!(q39.category, QueryCategory::Join);
        let sql = q39.to_sql();
        assert!(
            sql.contains("FROM city p, cityMayor r WHERE p.mayor = r.name"),
            "{sql}"
        );
        let q21 = &s[20];
        assert_eq!(q21.to_sql(), "SELECT COUNT(*) FROM city");
    }

    #[test]
    fn condition_sql_forms() {
        let c = Condition {
            attribute: "population".into(),
            op: CmpOp::Between,
            values: vec![num(10.0), num(20.0)],
        };
        assert_eq!(condition_sql(&c, None), "population BETWEEN 10 AND 20");
        assert_eq!(
            condition_sql(&c, Some("p")),
            "p.population BETWEEN 10 AND 20"
        );
        let c2 = Condition {
            attribute: "name".into(),
            op: CmpOp::In,
            values: vec![text("A"), text("O'B")],
        };
        assert_eq!(condition_sql(&c2, None), "name IN ('A', 'O''B')");
    }

    #[test]
    fn suite_is_deterministic() {
        let (w, s1) = suite();
        let s2 = build_suite(&w);
        assert_eq!(s1, s2);
    }

    #[test]
    fn operator_suite_covers_every_family_and_is_deterministic() {
        let w = World::generate(42);
        let ops = build_operator_suite(&w);
        for fam in [
            OperatorFamily::JoinLlm,
            OperatorFamily::JoinStored,
            OperatorFamily::GroupAgg,
            OperatorFamily::Limit,
        ] {
            assert!(
                ops.iter().filter(|q| q.family == fam).count() >= 4,
                "family {fam:?} under-represented"
            );
        }
        for (i, q) in ops.iter().enumerate() {
            assert_eq!(q.id, i + 1);
        }
        assert_eq!(ops, build_operator_suite(&w));
    }

    #[test]
    fn operator_suite_plans_and_has_non_empty_ground_truth() {
        for seed in [42u64, 7, 99] {
            let w = World::generate(seed);
            let db = to_database(&w);
            for q in build_operator_suite(&w) {
                let r = db
                    .execute(&q.sql)
                    .unwrap_or_else(|e| panic!("op{} (seed {seed}): {}\n{e}", q.id, q.sql));
                assert!(
                    !r.is_empty(),
                    "op{} returned empty (seed {seed}): {}",
                    q.id,
                    q.sql
                );
                if let OperatorCheck::Window {
                    unlimited_sql,
                    n,
                    offset,
                } = &q.check
                {
                    let full = db
                        .execute(unlimited_sql)
                        .unwrap_or_else(|e| panic!("op{} unlimited: {e}", q.id));
                    let expect = (*n).min(full.rows.len().saturating_sub(*offset));
                    assert_eq!(r.rows.len(), expect, "op{} window size (seed {seed})", q.id);
                }
            }
        }
    }
}
