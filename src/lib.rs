//! # galois
//!
//! Facade crate for **galois-rs**, a from-scratch Rust reproduction of
//! ["Querying Large Language Models with SQL"](https://arxiv.org/abs/2304.00472)
//! (Saeed, De Cao, Papotti — EDBT 2024).
//!
//! Galois executes SPJA SQL over a pre-trained LLM by compiling the
//! logical query plan into a chain of text prompts (key scans, per-key
//! filter checks, per-key attribute fetches), cleaning the answers into
//! typed cells, and running joins/aggregates/sorts as ordinary relational
//! operators over the retrieved tuples.
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] (`galois-core`) — the Galois engine itself;
//! * [`relational`] — in-memory SPJA engine (planner + ground truth);
//! * [`llm`] — the simulated pre-trained LLM substrate;
//! * [`sql`] — SQL lexer/parser/AST;
//! * [`dataset`] — Spider-substitute corpus (world + 46-query suite);
//! * [`eval`] — metrics and harness regenerating the paper's tables.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use galois::core::Galois;
//! use galois::dataset::Scenario;
//! use galois::llm::{ModelProfile, SimLlm};
//!
//! let scenario = Scenario::generate(42);
//! let model = Arc::new(SimLlm::new(scenario.knowledge.clone(), ModelProfile::chatgpt()));
//! let galois = Galois::new(model, scenario.database.clone());
//!
//! let r = galois.execute("SELECT name FROM city WHERE population > 1000000").unwrap();
//! assert!(!r.relation.is_empty());
//! ```

#![warn(missing_docs)]

pub use galois_core as core;
pub use galois_dataset as dataset;
pub use galois_eval as eval;
pub use galois_llm as llm;
pub use galois_relational as relational;
pub use galois_sql as sql;
