//! Data imputation with an LLM source (paper §1 "Applications": "the data
//! from the LLM can be used as a source in … imputation").
//!
//! An enterprise table `branches(office, city, headcount)` has no
//! population data for its cities. One hybrid query joins it against the
//! LLM's knowledge to impute the missing attribute — no extraction
//! pipeline, no training examples.
//!
//! ```sh
//! cargo run --example data_imputation
//! ```

use galois::core::Galois;
use galois::dataset::Scenario;
use galois::llm::{ModelProfile, SimLlm};
use galois::relational::{Column, DataType, Table, TableSchema, Value};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::generate(42);

    // Enterprise-only data: branch offices located in some world cities.
    // The LLM has never seen this table (Figure 2's unstructured/DB split).
    let mut db = scenario.database.clone();
    let mut branches = Table::new(
        "branches",
        TableSchema::new(
            vec![
                Column::new("office", DataType::Text),
                Column::new("city", DataType::Text),
                Column::new("headcount", DataType::Int),
            ],
            "office",
        )
        .expect("valid schema"),
    );
    for (i, city) in scenario.world.cities.iter().take(6).enumerate() {
        branches
            .insert(vec![
                Value::Text(format!("Office {}", i + 1)),
                Value::Text(city.name.clone()),
                Value::Int(40 + 13 * i as i64),
            ])
            .expect("valid row");
    }
    db.add_table(branches).expect("fresh table name");

    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::chatgpt(),
    ));
    let galois = Galois::new(model, db);

    // Impute city population (and country) for every office from the LLM.
    let sql = "SELECT b.office, b.city, c.population, c.country \
               FROM DB.branches b, LLM.city c WHERE b.city = c.name \
               ORDER BY b.office";
    println!("SQL> {sql}\n");
    let result = galois.execute(sql).expect("imputation query executes");
    println!("{}", result.relation);
    println!(
        "imputed {} offices using {} prompts; NULLs mean the model declined \
         to answer (the paper's 'Unknown' channel)",
        result.relation.len(),
        result.stats.total_prompts()
    );
}
