//! Quickstart: run a SQL query against a (simulated) pre-trained LLM.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The session mirrors the paper's Figure 1: the user writes ordinary SQL
//! over a declared schema; Galois retrieves tuples from the language model
//! with automatically generated prompts and returns a relation.

use galois::core::Galois;
use galois::dataset::Scenario;
use galois::llm::{ModelProfile, SimLlm};
use std::sync::Arc;

fn main() {
    // A seeded scenario bundles the schema catalog, the ground-truth DB
    // and the knowledge the simulated LLM has "memorised".
    let scenario = Scenario::generate(42);
    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::chatgpt(),
    ));
    let galois = Galois::new(model, scenario.database.clone());

    let sql = "SELECT name, population FROM city WHERE population > 1000000";
    println!("SQL> {sql}\n");

    // How will Galois execute this? `EXPLAIN <query>` returns the chosen
    // plan with cost estimates as a QUERY PLAN relation, costing zero
    // prompts (Figure 3 view; `galois.explain(sql)` gives the same text).
    let plan = galois
        .execute(&format!("EXPLAIN {sql}"))
        .expect("query plans");
    for row in &plan.relation.rows {
        println!("{}", row[0].render());
    }

    let result = galois.execute(sql).expect("query executes");
    println!("{}", result.relation);
    println!(
        "{} prompts ({} list / {} filter / {} fetch), {:.1} virtual seconds",
        result.stats.total_prompts(),
        result.stats.list_prompts,
        result.stats.filter_prompts,
        result.stats.fetch_prompts,
        result.stats.virtual_seconds(),
    );

    // Compare against the ground truth the simulator was seeded from.
    let truth = scenario.database.execute(sql).expect("ground truth");
    println!(
        "\nground truth has {} rows; the LLM returned {}",
        truth.len(),
        result.relation.len()
    );
}
