//! Hybrid querying (paper §1, Figure 2): one SQL script joins enterprise
//! data that lives **only in the DB** with world knowledge that lives
//! **only in the LLM**.
//!
//! ```sh
//! cargo run --example hybrid_query
//! ```
//!
//! The paper's motivating query is
//!
//! ```sql
//! SELECT c.GDP, AVG(e.salary)
//! FROM LLM.country c, DB.Employees e
//! WHERE c.code = e.countryCode
//! GROUP BY e.countryCode
//! ```
//!
//! (we make the grouping explicit and aggregate the GDP, as standard SQL
//! requires every output column to be grouped or aggregated).

use galois::core::Galois;
use galois::dataset::Scenario;
use galois::llm::{ModelProfile, SimLlm};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::generate(42);

    // Note what each side knows: `employees` rows never enter the LLM's
    // knowledge store, and the engine holds no `country` GDP — the query
    // cannot be answered from either source alone.
    let model = Arc::new(SimLlm::new(
        scenario.knowledge.clone(),
        ModelProfile::gpt3(),
    ));
    let galois = Galois::new(model, scenario.database.clone());

    let sql = "SELECT e.countryCode, AVG(e.salary), MAX(c.gdp) \
               FROM LLM.country c, DB.employees e \
               WHERE c.code = e.countryCode \
               GROUP BY e.countryCode \
               ORDER BY AVG(e.salary) DESC LIMIT 8";
    println!("SQL> {sql}\n");
    println!("{}", galois.explain(sql).expect("query plans"));

    let result = galois.execute(sql).expect("hybrid query executes");
    println!("{}", result.relation);
    println!(
        "retrieved {} country tuples from the LLM with {} prompts; \
         employee data came from the DB",
        result.stats.rows_retrieved,
        result.stats.total_prompts()
    );
}
