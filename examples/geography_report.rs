//! Geography analytics across models (the paper's motivating domain):
//! runs the same world-geography queries on every model profile and
//! reports fidelity against ground truth — a miniature of the paper's
//! evaluation.
//!
//! ```sh
//! cargo run --example geography_report
//! ```

use galois::core::Galois;
use galois::dataset::Scenario;
use galois::eval::{cardinality_diff_percent, match_records, relation_to_records, TextTable};
use galois::llm::{ModelProfile, SimLlm};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::generate(42);
    let queries = [
        (
            "large cities",
            "SELECT name FROM city WHERE population > 1000000",
        ),
        (
            "rich countries",
            "SELECT name, gdp FROM country WHERE gdp > 5.0",
        ),
        (
            "cities per country",
            "SELECT country, COUNT(*) FROM city GROUP BY country",
        ),
        (
            "city + mayor birth date",
            "SELECT p.name, r.birthDate FROM city p, cityMayor r WHERE p.mayor = r.name",
        ),
    ];

    for (label, sql) in queries {
        println!("== {label}\n   {sql}");
        let truth = scenario.database.execute(sql).expect("ground truth");
        let mut table = TextTable::new(&["model", "|R_D|", "|R_M|", "card diff %", "cells %"]);
        for profile in ModelProfile::all() {
            let name = profile.name.clone();
            let model = Arc::new(SimLlm::new(scenario.knowledge.clone(), profile));
            let galois = Galois::new(model, scenario.database.clone());
            let result = galois.execute(sql).expect("query executes");
            let matching = match_records(&truth, &relation_to_records(&result.relation));
            table.row(vec![
                name,
                truth.len().to_string(),
                result.relation.len().to_string(),
                format!(
                    "{:+.1}",
                    cardinality_diff_percent(truth.len(), result.relation.len())
                ),
                format!("{:.0}", matching.score() * 100.0),
            ]);
        }
        println!("{}", table.render());
    }

    println!("note: joins lose most rows on every model — the paper's");
    println!("\"IT\" vs \"ITA\" surface-form failure, reproduced here by the");
    println!("simulator's per-context naming conventions.");
}
