//! `EXPLAIN` and the cost-based planner: inspect how Galois would execute
//! a query — which conditions become pushed-down scan prompts, which stay
//! per-key boolean prompts, what every step is expected to cost — without
//! issuing a single prompt, then execute under both planner modes (with
//! multi-key prompt batching and the streaming pipeline) and compare the
//! real accounting.
//!
//! Run with: `cargo run --release --example explain_plan`

use galois::core::{
    Admission, AdmissionPolicy, Galois, GaloisOptions, Parallelism, Pipeline, Planner, PromptBatch,
    Resilience, RetryPolicy,
};
use galois::dataset::Scenario;
use galois::llm::{FaultProfile, FaultyLlm, ModelProfile, SimLlm};
use std::sync::Arc;

fn main() {
    let scenario = Scenario::generate(42);
    let sql = "SELECT name, population FROM city WHERE elevation < 100";

    for (label, planner, prompt_batch, pipeline, lanes) in [
        (
            "heuristic",
            Planner::Heuristic,
            PromptBatch::Off,
            Pipeline::Off,
            1,
        ),
        (
            "cost-based",
            Planner::CostBased,
            PromptBatch::Off,
            Pipeline::Off,
            1,
        ),
        (
            "cost-based + batch 10",
            Planner::CostBased,
            PromptBatch::Keys(10),
            Pipeline::Off,
            1,
        ),
        // The streaming pipeline needs lanes: the EXPLAIN header gains
        // `pipeline: streaming` and the latency estimate becomes the
        // dataflow's critical path instead of the phase-barrier sum.
        (
            "cost-based + batch 10 + streaming, 8 lanes",
            Planner::CostBased,
            PromptBatch::Keys(10),
            Pipeline::Streaming,
            8,
        ),
        // Grid fusion adds the attribute axis: the header's batch tag
        // becomes `batch: 10 keys × 4 attrs/prompt` and the fetch
        // estimate drops to `⌈C/A⌉` chunk streams.
        (
            "cost-based + grid 10×4 + streaming, 8 lanes",
            Planner::CostBased,
            PromptBatch::Grid { keys: 10, attrs: 4 },
            Pipeline::Streaming,
            8,
        ),
    ] {
        let model = Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        ));
        let galois = Galois::with_options(
            model,
            scenario.database.clone(),
            GaloisOptions {
                planner,
                prompt_batch,
                pipeline,
                parallelism: Parallelism::new(lanes),
                ..Default::default()
            },
        );

        // `EXPLAIN <query>` goes through the ordinary execute() channel and
        // returns the plan as a one-column QUERY PLAN relation, costing
        // zero prompts.
        let explained = galois.execute(&format!("EXPLAIN {sql}")).unwrap();
        println!("=== {label} ===");
        for row in &explained.relation.rows {
            println!("{}", row[0].render());
        }
        assert_eq!(explained.stats.total_prompts(), 0);

        // Now actually run it and compare the estimate with reality.
        let result = galois.execute(sql).unwrap();
        println!(
            "actual: {} rows, {} prompts ({} list + {} filter + {} fetch), {} virtual ms\n",
            result.relation.len(),
            result.stats.total_prompts(),
            result.stats.list_prompts,
            result.stats.filter_prompts,
            result.stats.fetch_prompts,
            result.stats.virtual_ms,
        );
    }

    // Resilience: the same query over a model that fails ~20 % of all
    // prompts (deterministically, via the seeded FaultyLlm wrapper).
    // EXPLAIN gains a `resilience:` line showing the armed policy, and
    // the actual run's retry counters surface in QueryStats — while the
    // relation and the prompt bill net of retries stay exactly the
    // fault-free run's.
    let model = Arc::new(FaultyLlm::new(
        Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        )),
        FaultProfile::with_rate(0.2),
    ));
    let galois = Galois::with_options(
        model,
        scenario.database.clone(),
        GaloisOptions {
            planner: Planner::CostBased,
            prompt_batch: PromptBatch::Keys(10),
            resilience: Resilience::On(RetryPolicy::default()),
            ..Default::default()
        },
    );
    let explained = galois.execute(&format!("EXPLAIN {sql}")).unwrap();
    println!("=== cost-based + batch 10 + resilience, 20 % faults ===");
    for row in &explained.relation.rows {
        println!("{}", row[0].render());
    }
    assert_eq!(explained.stats.total_prompts(), 0);
    let result = galois.execute(sql).unwrap();
    println!(
        "actual: {} rows, {} prompts net of retries, {} retries \
         ({} timeouts, {} rate-limited), {} failed cells, {} virtual ms",
        result.relation.len(),
        result.stats.total_prompts(),
        result.stats.retries,
        result.stats.timeouts,
        result.stats.rate_limited,
        result.stats.failed_cells,
        result.stats.virtual_ms,
    );
    assert_eq!(result.stats.failed_cells, 0, "retries absorb the schedule");

    // Admission control: the same streaming stack with cross-query
    // scheduling armed. EXPLAIN gains a queueing-aware `admission:` line
    // naming the shared-pool width, the in-flight window, the per-session
    // quota and the fair-share rule — the plan itself (and its cost
    // estimates) are untouched, because admission only reshapes *when*
    // traces replay, never what the query asks.
    let galois = Galois::with_options(
        Arc::new(SimLlm::new(
            scenario.knowledge.clone(),
            ModelProfile::oracle(),
        )),
        scenario.database.clone(),
        GaloisOptions {
            planner: Planner::CostBased,
            prompt_batch: PromptBatch::Keys(10),
            pipeline: Pipeline::Streaming,
            parallelism: Parallelism::new(8),
            admission: Admission::Fair(AdmissionPolicy {
                max_inflight: 14,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let explained = galois.execute(&format!("EXPLAIN {sql}")).unwrap();
    println!("\n=== streaming, 8 lanes + fair admission (in-flight cap 14) ===");
    for row in &explained.relation.rows {
        println!("{}", row[0].render());
    }
    assert_eq!(explained.stats.total_prompts(), 0);
    let admission_line = explained
        .relation
        .rows
        .iter()
        .map(|row| row[0].render())
        .find(|line| line.starts_with("admission:"))
        .expect("fair admission adds its EXPLAIN line");
    println!("-> {admission_line}");
}
